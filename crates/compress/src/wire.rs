//! The versioned byte-level wire format every [`crate::codec::UpdateCodec`]
//! emits.
//!
//! A [`WireUpdate`] is a real, self-describing byte buffer — what a client
//! would actually put on the network — rather than an in-memory struct with
//! an asserted size. The layout (version 1) is:
//!
//! ```text
//! [0xB3 0xF1]          magic
//! [u8]                 format version (currently 1)
//! [u8]                 payload kind (0 sparse, 1 quantized,
//!                      2 sparse+quantized, 3 dense)
//! [varint]             dense_len
//! ── kind 0 (sparse) ──────────────────────────────────────────────
//! [varint]             nnz
//! [varint × nnz]       delta-encoded indices (first absolute, then gaps ≥ 1)
//! [f32 LE × nnz]       values
//! ── kind 1 (quantized) ───────────────────────────────────────────
//! [u8]                 bits per coordinate (sign + level), 2..=16
//! [f32 LE]             L2 norm of the vector
//! [packed]             dense_len × bits, MSB-first
//! ── kind 2 (sparse + quantized) ──────────────────────────────────
//! [varint]             nnz
//! [varint × nnz]       delta-encoded indices
//! [u8]                 bits per coordinate
//! [f32 LE]             L2 norm of the retained values
//! [packed]             nnz × bits, MSB-first
//! ── kind 3 (dense) ───────────────────────────────────────────────
//! [f32 LE × dense_len] values (ratio-1.0 uploads: no index overhead)
//! ── kind 4 (segmented) ───────────────────────────────────────────
//! [varint]             number of segments (≥ 1)
//! [per segment]        varint byte length, then a complete nested
//!                      wire update (any kind except segmented) whose
//!                      dense lengths must tile dense_len exactly
//! ```
//!
//! Varints are LEB128 over `u64`. Each packed coordinate stores a sign bit
//! followed by `bits − 1` magnitude-level bits; the dequantized value is
//! `sign · norm · level / max_level` with `max_level = 2^(bits−1) − 1`.
//!
//! The header bytes are pinned by a golden-bytes test so accidental format
//! drift fails CI; bump [`WIRE_VERSION`] for any intentional layout change.

use crate::compressor::CompressedUpdate;
use crate::quantize::{max_level_for_bits, qsgd_dequantize};
use crate::sparse::SparseUpdate;
use bytes::{BufMut, Bytes, BytesMut};

/// First two bytes of every encoded update.
pub const WIRE_MAGIC: [u8; 2] = [0xB3, 0xF1];

/// Current wire-format version.
pub const WIRE_VERSION: u8 = 1;

/// Payload kind tag: COO sparse indices + f32 values.
pub const KIND_SPARSE: u8 = 0;
/// Payload kind tag: dense bit-packed QSGD levels.
pub const KIND_QUANTIZED: u8 = 1;
/// Payload kind tag: sparse indices + bit-packed QSGD levels.
pub const KIND_SPARSE_QUANTIZED: u8 = 2;
/// Payload kind tag: every coordinate as a raw f32 (ratio-1.0 uploads; no
/// index overhead, so a dense transmission costs dense bytes).
pub const KIND_DENSE: u8 = 3;
/// Payload kind tag: length-prefixed per-segment wire updates whose dense
/// lengths tile the full vector — the frame a layer-aware
/// [`crate::plan::PlannedCodec`] emits, so per-layer codecs keep honest
/// byte accounting (the framing overhead is part of the buffer).
pub const KIND_SEGMENTED: u8 = 4;

/// A decoding failure: the buffer is not a valid version-1 wire update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header or a declared payload requires.
    Truncated,
    /// The buffer does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The version byte is newer than this decoder understands.
    UnsupportedVersion(u8),
    /// The kind byte is not one of the defined payload kinds.
    UnknownKind(u8),
    /// Structurally invalid payload (bad index ordering, bit width, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire update"),
            WireError::BadMagic => write!(f, "bad wire magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown wire payload kind {k}"),
            WireError::Corrupt(what) => write!(f, "corrupt wire payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One encoded model update: the exact bytes a client ships, plus decoding.
///
/// Produced by [`crate::codec::UpdateCodec::encode`]; [`WireUpdate::len`] is
/// what the network simulator charges under
/// [`CostBasis::Encoded`](https://docs.rs/fl-netsim) instead of the paper's
/// analytic `2·V·CR` formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireUpdate {
    bytes: Bytes,
}

impl WireUpdate {
    /// Wrap raw bytes (validated lazily by [`WireUpdate::decode`]).
    pub fn from_bytes(bytes: Bytes) -> Self {
        Self { bytes }
    }

    /// Size on the wire in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for a zero-length buffer (never produced by the encoders).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The payload kind byte, if the header is present and valid.
    pub fn kind(&self) -> Result<u8, WireError> {
        let b = self.as_bytes();
        if b.len() < 4 {
            return Err(WireError::Truncated);
        }
        if b[0..2] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        if b[2] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(b[2]));
        }
        Ok(b[3])
    }

    /// Decode the buffer into the lossy in-memory update it represents.
    pub fn decode(&self) -> Result<CompressedUpdate, WireError> {
        let kind = self.kind()?;
        let b = self.as_bytes();
        let mut cur = 4usize;
        let declared_len = read_varint(b, &mut cur)?;
        // Wire indices are u32, so no valid buffer can describe a longer
        // vector; checking the raw varint (before any `as usize` cast, which
        // would itself truncate on 32-bit targets) keeps a crafted
        // `dense_len` from silently wrapping into `0..dense_len as u32`.
        if declared_len > u32::MAX as u64 {
            return Err(WireError::Corrupt("dense length exceeds u32 index range"));
        }
        let dense_len = declared_len as usize;
        match kind {
            KIND_SPARSE => {
                let (indices, values) = decode_sparse_body(b, &mut cur, dense_len)?;
                Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                    indices, values, dense_len,
                )))
            }
            KIND_QUANTIZED => {
                let (norm, max_level, levels) = decode_quantized_body(b, &mut cur, dense_len)?;
                Ok(CompressedUpdate::Quantized {
                    values: qsgd_dequantize(norm, max_level, &levels),
                    wire_bytes: self.len(),
                })
            }
            KIND_SPARSE_QUANTIZED => {
                let indices = decode_indices(b, &mut cur, dense_len)?;
                let (norm, max_level, levels) = decode_quantized_body(b, &mut cur, indices.len())?;
                let values = qsgd_dequantize(norm, max_level, &levels);
                Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                    indices, values, dense_len,
                )))
            }
            KIND_DENSE => {
                if dense_len > (b.len() - cur) / 4 {
                    return Err(WireError::Truncated);
                }
                let mut values = Vec::with_capacity(dense_len);
                for _ in 0..dense_len {
                    values.push(read_f32_le(b, &mut cur)?);
                }
                // Decode to the full-density sparse form: downstream overlap
                // analysis and aggregation treat a ratio-1.0 upload exactly
                // like a sparse update that retained every coordinate.
                let indices = (0..dense_len as u32).collect();
                Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                    indices, values, dense_len,
                )))
            }
            KIND_SEGMENTED => decode_segmented_body(b, &mut cur, dense_len),
            other => Err(WireError::UnknownKind(other)),
        }
    }

    /// For a [`KIND_SEGMENTED`] buffer, the per-segment payload byte lengths
    /// in frame order (excluding the outer header and length prefixes — the
    /// bytes each segment's own wire update occupies). `None` for any other
    /// or structurally invalid buffer. This is how the round engine breaks a
    /// planned upload's honest total down per layer without re-decoding.
    pub fn segment_byte_lens(&self) -> Option<Vec<usize>> {
        if self.kind().ok()? != KIND_SEGMENTED {
            return None;
        }
        let b = self.as_bytes();
        let mut cur = 4usize;
        read_varint(b, &mut cur).ok()?; // dense_len
        let n = read_varint(b, &mut cur).ok()? as usize;
        if n > b.len() - cur {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let plen = read_varint(b, &mut cur).ok()? as usize;
            if plen > b.len() - cur {
                return None;
            }
            out.push(plen);
            cur += plen;
        }
        Some(out)
    }
}

fn header(kind: u8, dense_len: usize, capacity_hint: usize) -> BytesMut {
    let mut buf = BytesMut::with_capacity(4 + 10 + capacity_hint);
    buf.put_slice(&WIRE_MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(kind);
    put_varint(&mut buf, dense_len as u64);
    buf
}

fn put_indices(buf: &mut BytesMut, indices: &[u32]) {
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "wire indices must be strictly increasing"
    );
    put_varint(buf, indices.len() as u64);
    let mut prev = 0u64;
    for (pos, &i) in indices.iter().enumerate() {
        let i = i as u64;
        if pos == 0 {
            put_varint(buf, i);
        } else {
            put_varint(buf, i - prev);
        }
        prev = i;
    }
}

/// Encode a sparse update as a `KIND_SPARSE` buffer.
pub fn encode_sparse(update: &SparseUpdate) -> WireUpdate {
    let mut buf = header(KIND_SPARSE, update.dense_len(), update.nnz() * 7);
    put_indices(&mut buf, update.indices());
    for &v in update.values() {
        buf.put_f32_le(v);
    }
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode an uncompressed (ratio-1.0) update as a `KIND_DENSE` buffer: raw
/// f32 values with no per-coordinate index overhead.
pub fn encode_dense(values: &[f32]) -> WireUpdate {
    let mut buf = header(KIND_DENSE, values.len(), values.len() * 4);
    for &v in values {
        buf.put_f32_le(v);
    }
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode a dense quantized vector as a `KIND_QUANTIZED` buffer. `levels`
/// holds signed levels (`±level`, magnitude ≤ `2^(bits−1) − 1`).
pub fn encode_quantized(dense_len: usize, bits: u8, norm: f32, levels: &[i32]) -> WireUpdate {
    assert_eq!(levels.len(), dense_len, "one level per dense coordinate");
    let mut buf = header(
        KIND_QUANTIZED,
        dense_len,
        5 + (dense_len * bits as usize).div_ceil(8),
    );
    put_quantized_body(&mut buf, bits, norm, levels);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode a sparsified-then-quantized update as a `KIND_SPARSE_QUANTIZED`
/// buffer: `indices` are the retained coordinates, `levels` their signed
/// quantization levels.
pub fn encode_sparse_quantized(
    dense_len: usize,
    indices: &[u32],
    bits: u8,
    norm: f32,
    levels: &[i32],
) -> WireUpdate {
    assert_eq!(indices.len(), levels.len(), "one level per retained index");
    let mut buf = header(
        KIND_SPARSE_QUANTIZED,
        dense_len,
        indices.len() * 3 + 5 + (indices.len() * bits as usize).div_ceil(8),
    );
    put_indices(&mut buf, indices);
    put_quantized_body(&mut buf, bits, norm, levels);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode per-segment wire updates into one framed `KIND_SEGMENTED` buffer.
/// `dense_len` is the full vector's length; the parts' dense lengths must
/// tile it exactly (checked on decode) and no part may itself be segmented.
pub fn encode_segmented(dense_len: usize, parts: &[WireUpdate]) -> WireUpdate {
    assert!(!parts.is_empty(), "a segmented update needs >= 1 segment");
    let payload: usize = parts.iter().map(|p| p.len() + 5).sum();
    let mut buf = header(KIND_SEGMENTED, dense_len, payload);
    put_varint(&mut buf, parts.len() as u64);
    for p in parts {
        // Hard check, not a debug_assert: decode rejects nested frames, so a
        // nested part would produce a buffer that cannot decode its own
        // encoding. One byte compare per part keeps the failure at the
        // encoder with a pointed message.
        assert_ne!(
            p.kind(),
            Ok(KIND_SEGMENTED),
            "segmented payloads do not nest"
        );
        put_varint(&mut buf, p.len() as u64);
        buf.put_slice(p.as_bytes());
    }
    WireUpdate::from_bytes(buf.freeze())
}

/// Decode the body of a `KIND_SEGMENTED` buffer: parse and decode every
/// nested segment, then splice them into one update over the full vector.
/// The result is always sparse — a quantized segment (whose coordinate count
/// is bounded by its own byte length) becomes a full-density run at its
/// offset — so a crafted buffer can never force an allocation larger than
/// its segments' own decode guards admit.
fn decode_segmented_body(
    b: &[u8],
    cur: &mut usize,
    dense_len: usize,
) -> Result<CompressedUpdate, WireError> {
    let n = read_varint(b, cur)? as usize;
    if n == 0 {
        return Err(WireError::Corrupt("segmented update with no segments"));
    }
    // Every segment needs at least its one-byte length prefix; reject a
    // declared count the remaining buffer cannot hold before allocating.
    if n > b.len() - *cur {
        return Err(WireError::Truncated);
    }
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let mut covered = 0usize;
    for _ in 0..n {
        let plen_raw = read_varint(b, cur)?;
        if plen_raw > (b.len() - *cur) as u64 {
            return Err(WireError::Truncated);
        }
        let plen = plen_raw as usize;
        let part = WireUpdate::from_bytes(Bytes::copy_from_slice(&b[*cur..*cur + plen]));
        if part.kind()? == KIND_SEGMENTED {
            return Err(WireError::Corrupt("nested segmented payload"));
        }
        let update = part.decode()?;
        let part_len = update.dense_len();
        if part_len > dense_len - covered {
            return Err(WireError::Corrupt("segment lengths exceed dense length"));
        }
        match update {
            CompressedUpdate::Sparse(s) => {
                for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                    indices.push(covered as u32 + i);
                    values.push(v);
                }
            }
            CompressedUpdate::Quantized { values: pv, .. } => {
                // Full-density run: every coordinate of the segment, in
                // order. `pv.len()` is bounded by the part's own byte length
                // (its quantized decode guard), so this never over-allocates.
                indices.extend((covered as u32)..(covered + part_len) as u32);
                values.extend_from_slice(&pv);
            }
        }
        covered += part_len;
        *cur += plen;
    }
    if covered != dense_len {
        return Err(WireError::Corrupt(
            "segment lengths do not cover the dense vector",
        ));
    }
    Ok(CompressedUpdate::Sparse(SparseUpdate::new(
        indices, values, dense_len,
    )))
}

fn put_quantized_body(buf: &mut BytesMut, bits: u8, norm: f32, levels: &[i32]) {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let max_level = max_level_for_bits(bits) as i32;
    buf.put_u8(bits);
    buf.put_f32_le(norm);
    // MSB-first bit packing: sign bit, then bits-1 magnitude bits.
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &l in levels {
        let sign = (l < 0) as u64;
        let mag = l.unsigned_abs().min(max_level as u32) as u64;
        let field = (sign << (bits - 1)) | mag;
        acc = (acc << bits) | field;
        acc_bits += bits as u32;
        while acc_bits >= 8 {
            acc_bits -= 8;
            buf.put_u8((acc >> acc_bits) as u8);
        }
    }
    if acc_bits > 0 {
        buf.put_u8((acc << (8 - acc_bits)) as u8);
    }
}

fn decode_indices(b: &[u8], cur: &mut usize, dense_len: usize) -> Result<Vec<u32>, WireError> {
    let nnz = read_varint(b, cur)? as usize;
    if nnz > dense_len {
        return Err(WireError::Corrupt("nnz exceeds dense length"));
    }
    // Every index occupies at least one varint byte; reject a declared count
    // the remaining buffer cannot possibly hold before allocating for it
    // (a crafted header must not drive a huge allocation).
    if nnz > b.len() - *cur {
        return Err(WireError::Truncated);
    }
    let mut indices = Vec::with_capacity(nnz);
    let mut prev: u64 = 0;
    for pos in 0..nnz {
        let raw = read_varint(b, cur)?;
        let idx = if pos == 0 {
            raw
        } else {
            if raw == 0 {
                return Err(WireError::Corrupt("indices not strictly increasing"));
            }
            prev + raw
        };
        if idx >= dense_len as u64 {
            return Err(WireError::Corrupt("index out of range"));
        }
        indices.push(idx as u32);
        prev = idx;
    }
    Ok(indices)
}

fn decode_sparse_body(
    b: &[u8],
    cur: &mut usize,
    dense_len: usize,
) -> Result<(Vec<u32>, Vec<f32>), WireError> {
    let indices = decode_indices(b, cur, dense_len)?;
    if b.len() < *cur + indices.len().saturating_mul(4) {
        return Err(WireError::Truncated);
    }
    let mut values = Vec::with_capacity(indices.len());
    for _ in 0..indices.len() {
        values.push(read_f32_le(b, cur)?);
    }
    Ok((indices, values))
}

fn decode_quantized_body(
    b: &[u8],
    cur: &mut usize,
    count: usize,
) -> Result<(f32, u32, Vec<i32>), WireError> {
    if b.len() < *cur + 5 {
        return Err(WireError::Truncated);
    }
    let bits = b[*cur];
    *cur += 1;
    if !(2..=16).contains(&bits) {
        return Err(WireError::Corrupt("bits out of range"));
    }
    let norm = read_f32_le(b, cur)?;
    // Bound the declared coordinate count by what the remaining bytes can
    // hold before any multiplication or allocation: a crafted dense_len must
    // neither overflow `count * bits` nor reserve gigabytes.
    if count > (b.len() - *cur).saturating_mul(8) / bits as usize {
        return Err(WireError::Truncated);
    }
    let packed_bytes = (count * bits as usize).div_ceil(8);
    let mut levels = Vec::with_capacity(count);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mut byte_cur = *cur;
    let sign_bit = 1u64 << (bits - 1);
    let mag_mask = sign_bit - 1;
    for _ in 0..count {
        while acc_bits < bits as u32 {
            acc = (acc << 8) | b[byte_cur] as u64;
            byte_cur += 1;
            acc_bits += 8;
        }
        let field = (acc >> (acc_bits - bits as u32)) & ((1u64 << bits) - 1);
        acc_bits -= bits as u32;
        let mag = (field & mag_mask) as i32;
        levels.push(if field & sign_bit != 0 { -mag } else { mag });
    }
    *cur += packed_bytes;
    Ok((norm, max_level_for_bits(bits), levels))
}

fn read_f32_le(b: &[u8], cur: &mut usize) -> Result<f32, WireError> {
    if b.len() < *cur + 4 {
        return Err(WireError::Truncated);
    }
    let v = f32::from_le_bytes([b[*cur], b[*cur + 1], b[*cur + 2], b[*cur + 3]]);
    *cur += 4;
    Ok(v)
}

/// Append an LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an LEB128 varint, advancing `cur`.
pub fn read_varint(b: &[u8], cur: &mut usize) -> Result<u64, WireError> {
    let mut out: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        if *cur >= b.len() {
            return Err(WireError::Truncated);
        }
        if shift >= 64 {
            return Err(WireError::Corrupt("varint overflow"));
        }
        let byte = b[*cur];
        *cur += 1;
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let b = buf.freeze();
            let mut cur = 0;
            assert_eq!(read_varint(&b, &mut cur).unwrap(), v);
            assert_eq!(cur, b.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut cur = 0;
        assert_eq!(read_varint(&[0x80], &mut cur), Err(WireError::Truncated));
    }

    #[test]
    fn sparse_wire_roundtrip_is_exact() {
        let s = SparseUpdate::new(vec![0, 7, 300, 5000], vec![1.5, -2.25, 0.125, 9.0], 10_000);
        let w = encode_sparse(&s);
        let back = w.decode().unwrap();
        assert_eq!(back.as_sparse().unwrap(), &s);
    }

    #[test]
    fn empty_sparse_update_encodes() {
        let s = SparseUpdate::empty(42);
        let back = encode_sparse(&s).decode().unwrap();
        assert_eq!(back.as_sparse().unwrap().nnz(), 0);
        assert_eq!(back.dense_len(), 42);
    }

    #[test]
    fn quantized_wire_roundtrip_recovers_levels() {
        // bits = 4 → max_level 7; signed levels survive packing exactly.
        let levels = vec![0, 7, -7, 3, -1, 2, 0, -5, 6];
        let w = encode_quantized(levels.len(), 4, 2.0, &levels);
        let back = w.decode().unwrap();
        let values = match back {
            CompressedUpdate::Quantized { values, wire_bytes } => {
                assert_eq!(wire_bytes, w.len());
                values
            }
            _ => panic!("expected quantized payload"),
        };
        for (&l, &v) in levels.iter().zip(values.iter()) {
            let expected = 2.0 * l as f32 / 7.0;
            assert!((v - expected).abs() < 1e-6, "level {l} decoded to {v}");
        }
    }

    #[test]
    fn sparse_quantized_wire_roundtrip() {
        let indices = vec![3u32, 10, 11, 99];
        let levels = vec![1, -3, 3, 2];
        let w = encode_sparse_quantized(100, &indices, 3, 1.0, &levels);
        let back = w.decode().unwrap();
        let s = back.as_sparse().unwrap();
        assert_eq!(s.indices(), &indices[..]);
        assert_eq!(s.dense_len(), 100);
        for (&l, &v) in levels.iter().zip(s.values().iter()) {
            assert!((v - l as f32 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn header_is_pinned() {
        // Golden bytes: any change to the header layout must be deliberate
        // (bump WIRE_VERSION and update this fixture).
        let s = SparseUpdate::new(vec![2, 5], vec![1.0, -1.0], 300);
        let w = encode_sparse(&s);
        let b = w.as_bytes();
        assert_eq!(&b[0..2], &WIRE_MAGIC);
        assert_eq!(b[2], 1, "wire version");
        assert_eq!(b[3], KIND_SPARSE);
        // dense_len 300 = varint [0xAC, 0x02], nnz 2, first index 2, gap 3.
        assert_eq!(&b[4..9], &[0xAC, 0x02, 0x02, 0x02, 0x03]);
        // Then two f32 LE values.
        assert_eq!(b.len(), 9 + 8);
        assert_eq!(&b[9..13], &1.0f32.to_le_bytes());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[1, 2])).decode(),
            Err(WireError::Truncated)
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0, 0, 1, 0, 0])).decode(),
            Err(WireError::BadMagic)
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0xB3, 0xF1, 99, 0, 0])).decode(),
            Err(WireError::UnsupportedVersion(99))
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0xB3, 0xF1, 1, 9, 0])).decode(),
            Err(WireError::UnknownKind(9))
        );
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let s = SparseUpdate::new(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 8);
        let w = encode_sparse(&s);
        let cut = WireUpdate::from_bytes(Bytes::copy_from_slice(&w.as_bytes()[..w.len() - 5]));
        assert_eq!(cut.decode(), Err(WireError::Truncated));
    }

    #[test]
    fn dense_wire_roundtrip_is_exact_without_index_overhead() {
        let values = vec![1.5f32, -2.0, 0.0, 4.25];
        let w = encode_dense(&values);
        // header (4) + varint dense_len (1) + 4 × f32: dense bytes, not 2×.
        assert_eq!(w.len(), 5 + 16);
        assert_eq!(w.kind().unwrap(), KIND_DENSE);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.indices(), &[0, 1, 2, 3]);
        assert_eq!(s.values(), &values[..]);
    }

    #[test]
    fn crafted_huge_counts_are_rejected_without_allocating() {
        // Quantized payload declaring u32::MAX coordinates: must error, not
        // overflow `count * bits` or reserve gigabytes.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_QUANTIZED);
        put_varint(&mut buf, u32::MAX as u64); // dense_len
        buf.put_u8(8); // bits
        buf.put_f32_le(1.0); // norm
        buf.put_u8(0xAB); // one stray payload byte
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Sparse payload declaring a huge dense_len and nnz with a tiny body.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SPARSE);
        put_varint(&mut buf, u32::MAX as u64); // dense_len
        put_varint(&mut buf, (u32::MAX - 1) as u64); // nnz
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Dense payload declaring more values than the buffer holds.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_DENSE);
        put_varint(&mut buf, u32::MAX as u64);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn dense_len_beyond_u32_is_corrupt_for_every_kind() {
        // Indices are u32 on the wire, so a varint dense_len above u32::MAX
        // can never be valid. The old decoder reconstructed dense indices via
        // `0..dense_len as u32`, silently truncating such buffers; now every
        // payload kind rejects them up front.
        for kind in [
            KIND_SPARSE,
            KIND_QUANTIZED,
            KIND_SPARSE_QUANTIZED,
            KIND_DENSE,
            KIND_SEGMENTED,
        ] {
            for dense_len in [u32::MAX as u64 + 1, 1u64 << 62, u64::MAX] {
                let mut buf = BytesMut::new();
                buf.put_slice(&WIRE_MAGIC);
                buf.put_u8(WIRE_VERSION);
                buf.put_u8(kind);
                put_varint(&mut buf, dense_len);
                // Enough trailing bytes that a truncating decoder would have
                // happily read a small body instead of erroring.
                buf.put_slice(&[0u8; 64]);
                assert_eq!(
                    WireUpdate::from_bytes(buf.freeze()).decode(),
                    Err(WireError::Corrupt("dense length exceeds u32 index range")),
                    "kind {kind} dense_len {dense_len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_sparse_quantized_rejects_unsorted_indices() {
        encode_sparse_quantized(100, &[5, 3], 4, 1.0, &[1, 2]);
    }

    #[test]
    fn segmented_roundtrip_splices_sparse_parts_with_offsets() {
        let a = encode_sparse(&SparseUpdate::new(vec![1, 3], vec![1.0, 2.0], 5));
        let b = encode_sparse(&SparseUpdate::new(vec![0, 6], vec![-1.0, 4.0], 7));
        let w = encode_segmented(12, &[a.clone(), b.clone()]);
        assert_eq!(w.kind().unwrap(), KIND_SEGMENTED);
        // Exact framing: header + varint(dense_len) + varint(n) + per part
        // (varint(len) + len) — the overhead is part of the honest byte count.
        assert_eq!(w.len(), 4 + 1 + 1 + (1 + a.len()) + (1 + b.len()));
        assert_eq!(w.segment_byte_lens().unwrap(), vec![a.len(), b.len()]);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.dense_len(), 12);
        assert_eq!(s.indices(), &[1, 3, 5, 11]);
        assert_eq!(s.values(), &[1.0, 2.0, -1.0, 4.0]);
    }

    #[test]
    fn segmented_quantized_part_becomes_a_full_density_run() {
        let sparse = encode_sparse(&SparseUpdate::new(vec![2], vec![9.0], 4));
        let quant = encode_quantized(3, 4, 7.0, &[7, -7, 0]);
        let w = encode_segmented(7, &[sparse, quant]);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.dense_len(), 7);
        // Segment 1 contributes its retained coordinate; segment 2 every
        // coordinate of its run (indices 4..7).
        assert_eq!(s.indices(), &[2, 4, 5, 6]);
        assert_eq!(s.values()[0], 9.0);
        assert!((s.values()[1] - 7.0).abs() < 1e-6);
        assert!((s.values()[2] + 7.0).abs() < 1e-6);
        assert_eq!(s.values()[3], 0.0);
    }

    #[test]
    fn segmented_rejects_crafted_frames() {
        let part = encode_sparse(&SparseUpdate::new(vec![0], vec![1.0], 3));

        // Lengths that do not tile the dense vector.
        let short = encode_segmented(5, std::slice::from_ref(&part));
        assert_eq!(
            short.decode(),
            Err(WireError::Corrupt(
                "segment lengths do not cover the dense vector"
            ))
        );
        let long = encode_segmented(2, std::slice::from_ref(&part));
        assert_eq!(
            long.decode(),
            Err(WireError::Corrupt("segment lengths exceed dense length"))
        );

        // Nested segmented payloads are rejected (no recursion bombs). The
        // encoder debug-asserts against this, so hand-build the frame.
        let inner = encode_segmented(3, std::slice::from_ref(&part));
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, inner.len() as u64);
        buf.put_slice(inner.as_bytes());
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("nested segmented payload"))
        );

        // Zero segments.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 0);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("segmented update with no segments"))
        );

        // A declared segment count the buffer cannot hold: must error before
        // any allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, u32::MAX as u64);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // A segment length prefix pointing past the end of the buffer.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1000);
        buf.put_u8(0xAB);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Truncating the last segment mid-payload is caught by the nested
        // decode.
        let full = encode_segmented(3, &[part]);
        let cut =
            WireUpdate::from_bytes(Bytes::copy_from_slice(&full.as_bytes()[..full.len() - 3]));
        assert_eq!(cut.decode(), Err(WireError::Truncated));
        assert_eq!(cut.segment_byte_lens(), None);
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        // Hand-built sparse buffer with an index beyond dense_len.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SPARSE);
        put_varint(&mut buf, 4); // dense_len
        put_varint(&mut buf, 1); // nnz
        put_varint(&mut buf, 9); // index 9 >= 4
        buf.put_f32_le(1.0);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("index out of range"))
        );
    }
}
