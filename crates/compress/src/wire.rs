//! The versioned byte-level wire format every [`crate::codec::UpdateCodec`]
//! emits.
//!
//! A [`WireUpdate`] is a real, self-describing byte buffer — what a client
//! would actually put on the network — rather than an in-memory struct with
//! an asserted size. The layout (version 1) is:
//!
//! ```text
//! [0xB3 0xF1]          magic
//! [u8]                 format version (currently 1)
//! [u8]                 payload kind (0 sparse, 1 quantized,
//!                      2 sparse+quantized, 3 dense)
//! [varint]             dense_len
//! ── kind 0 (sparse) ──────────────────────────────────────────────
//! [varint]             nnz
//! [varint × nnz]       delta-encoded indices (first absolute, then gaps ≥ 1)
//! [f32 LE × nnz]       values
//! ── kind 1 (quantized) ───────────────────────────────────────────
//! [u8]                 bits per coordinate (sign + level), 2..=16
//! [f32 LE]             L2 norm of the vector
//! [packed]             dense_len × bits, MSB-first
//! ── kind 2 (sparse + quantized) ──────────────────────────────────
//! [varint]             nnz
//! [varint × nnz]       delta-encoded indices
//! [u8]                 bits per coordinate
//! [f32 LE]             L2 norm of the retained values
//! [packed]             nnz × bits, MSB-first
//! ── kind 3 (dense) ───────────────────────────────────────────────
//! [f32 LE × dense_len] values (ratio-1.0 uploads: no index overhead)
//! ── kind 4 (segmented) ───────────────────────────────────────────
//! [varint]             number of segments (≥ 1)
//! [per segment]        varint byte length, then a complete nested
//!                      wire update (any kind except segmented) whose
//!                      dense lengths must tile dense_len exactly
//! ── kind 5 (entropy) ─────────────────────────────────────────────
//! [u8]                 flags (bit 0: sparse — indices precede levels)
//! [u8]                 bits per coordinate (sign + level), 2..=16
//! [f32 LE]             L2 norm of the coded values
//! [varint]             nnz (present only when the sparse flag is set)
//! [rc stream]          range-coded payload to the end of the buffer:
//!                      index gaps first (sparse only; bit-length via an
//!                      adaptive 5-bit tree + direct low bits), then per
//!                      coordinate an adaptive magnitude tree (context:
//!                      previous magnitude zero/non-zero) and, for
//!                      non-zero magnitudes, an adaptive sign bit
//!                      (context: previous coded sign)
//! ```
//!
//! Varints are LEB128 over `u64`. Each packed coordinate stores a sign bit
//! followed by `bits − 1` magnitude-level bits; the dequantized value is
//! `sign · norm · level / max_level` with `max_level = 2^(bits−1) − 1`.
//! Kind 5 carries the same `(norm, signed level)` information as kinds 1/2
//! but entropy-codes it with the adaptive range coder in [`crate::rc`]; the
//! [`encode_quantized_rc`] / [`encode_sparse_quantized_rc`] entry points fall
//! back to the bit-packed kinds whenever the coded stream would not be
//! strictly smaller, so the entropy path never expands an update.
//!
//! The header bytes are pinned by a golden-bytes test so accidental format
//! drift fails CI; bump [`WIRE_VERSION`] for any intentional layout change.

use crate::compressor::CompressedUpdate;
use crate::quantize::max_level_for_bits;
use crate::rc::{BitTree, RangeDecoder, RangeEncoder, PROB_INIT};
use crate::sparse::SparseUpdate;
use bytes::{BufMut, Bytes, BytesMut};

/// First two bytes of every encoded update.
pub const WIRE_MAGIC: [u8; 2] = [0xB3, 0xF1];

/// Current wire-format version.
pub const WIRE_VERSION: u8 = 1;

/// Payload kind tag: COO sparse indices + f32 values.
pub const KIND_SPARSE: u8 = 0;
/// Payload kind tag: dense bit-packed QSGD levels.
pub const KIND_QUANTIZED: u8 = 1;
/// Payload kind tag: sparse indices + bit-packed QSGD levels.
pub const KIND_SPARSE_QUANTIZED: u8 = 2;
/// Payload kind tag: every coordinate as a raw f32 (ratio-1.0 uploads; no
/// index overhead, so a dense transmission costs dense bytes).
pub const KIND_DENSE: u8 = 3;
/// Payload kind tag: length-prefixed per-segment wire updates whose dense
/// lengths tile the full vector — the frame a layer-aware
/// [`crate::plan::PlannedCodec`] emits, so per-layer codecs keep honest
/// byte accounting (the framing overhead is part of the buffer).
pub const KIND_SEGMENTED: u8 = 4;
/// Payload kind tag: range-coded quantized levels (optionally with sparse
/// indices). Same information as kinds 1/2, entropy-coded; produced only
/// when strictly smaller than the equivalent bit-packed buffer.
pub const KIND_ENTROPY: u8 = 5;

/// Allocation guard for the entropy kind: one coded coordinate costs at
/// least one adaptive binary decision, and a decision consumes at least
/// `log2(2048/2017) ≈ 0.022` bits of the stream (the adaptive probabilities
/// are bounded away from certainty), so no valid stream packs more than
/// ~372 coordinates into a byte. A declared count above this bound is
/// rejected before any allocation.
const MAX_DECISIONS_PER_BYTE: usize = 512;

/// A decoding failure: the buffer is not a valid version-1 wire update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header or a declared payload requires.
    Truncated,
    /// The buffer does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The version byte is newer than this decoder understands.
    UnsupportedVersion(u8),
    /// The kind byte is not one of the defined payload kinds.
    UnknownKind(u8),
    /// Structurally invalid payload (bad index ordering, bit width, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire update"),
            WireError::BadMagic => write!(f, "bad wire magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown wire payload kind {k}"),
            WireError::Corrupt(what) => write!(f, "corrupt wire payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One encoded model update: the exact bytes a client ships, plus decoding.
///
/// Produced by [`crate::codec::UpdateCodec::encode`]; [`WireUpdate::len`] is
/// what the network simulator charges under
/// [`CostBasis::Encoded`](https://docs.rs/fl-netsim) instead of the paper's
/// analytic `2·V·CR` formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireUpdate {
    bytes: Bytes,
}

impl WireUpdate {
    /// Wrap raw bytes (validated lazily by [`WireUpdate::decode`]).
    pub fn from_bytes(bytes: Bytes) -> Self {
        Self { bytes }
    }

    /// Size on the wire in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for a zero-length buffer (never produced by the encoders).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The payload kind byte, if the header is present and valid.
    pub fn kind(&self) -> Result<u8, WireError> {
        check_header(self.as_bytes())
    }

    /// Decode the buffer into the lossy in-memory update it represents.
    pub fn decode(&self) -> Result<CompressedUpdate, WireError> {
        decode_slice(self.as_bytes(), true)
    }

    /// For a [`KIND_SEGMENTED`] buffer, the per-segment payload byte lengths
    /// in frame order (excluding the outer header and length prefixes — the
    /// bytes each segment's own wire update occupies). `None` for any other
    /// or structurally invalid buffer. This is how the round engine breaks a
    /// planned upload's honest total down per layer without re-decoding.
    pub fn segment_byte_lens(&self) -> Option<Vec<usize>> {
        if self.kind().ok()? != KIND_SEGMENTED {
            return None;
        }
        let b = self.as_bytes();
        let mut cur = 4usize;
        read_varint(b, &mut cur).ok()?; // dense_len
        let n = read_varint(b, &mut cur).ok()? as usize;
        if n > b.len() - cur {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let plen = read_varint(b, &mut cur).ok()? as usize;
            if plen > b.len() - cur {
                return None;
            }
            out.push(plen);
            cur += plen;
        }
        Some(out)
    }
}

fn check_header(b: &[u8]) -> Result<u8, WireError> {
    if b.len() < 4 {
        return Err(WireError::Truncated);
    }
    if b[0..2] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    if b[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(b[2]));
    }
    Ok(b[3])
}

/// Decode one complete wire update from a borrowed slice. This is the single
/// decode path: [`WireUpdate::decode`] passes its whole buffer, and the
/// segmented decoder passes each part's sub-slice directly — no copy and no
/// second header validation per part. `allow_segmented` is false for nested
/// parts, which is what makes recursion bombs impossible.
fn decode_slice(b: &[u8], allow_segmented: bool) -> Result<CompressedUpdate, WireError> {
    let kind = check_header(b)?;
    let mut cur = 4usize;
    let declared_len = read_varint(b, &mut cur)?;
    // Wire indices are u32, so no valid buffer can describe a longer
    // vector; checking the raw varint (before any `as usize` cast, which
    // would itself truncate on 32-bit targets) keeps a crafted
    // `dense_len` from silently wrapping into `0..dense_len as u32`.
    if declared_len > u32::MAX as u64 {
        return Err(WireError::Corrupt("dense length exceeds u32 index range"));
    }
    let dense_len = declared_len as usize;
    match kind {
        KIND_SPARSE => {
            let (indices, values) = decode_sparse_body(b, &mut cur, dense_len)?;
            Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                indices, values, dense_len,
            )))
        }
        KIND_QUANTIZED => {
            let (_norm, values) = decode_quantized_body(b, &mut cur, dense_len)?;
            Ok(CompressedUpdate::Quantized {
                values,
                wire_bytes: b.len(),
            })
        }
        KIND_SPARSE_QUANTIZED => {
            let indices = decode_indices(b, &mut cur, dense_len)?;
            let (_norm, values) = decode_quantized_body(b, &mut cur, indices.len())?;
            Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                indices, values, dense_len,
            )))
        }
        KIND_DENSE => {
            if dense_len > (b.len() - cur) / 4 {
                return Err(WireError::Truncated);
            }
            let values: Vec<f32> = b[cur..cur + dense_len * 4]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            // Decode to the full-density sparse form: downstream overlap
            // analysis and aggregation treat a ratio-1.0 upload exactly
            // like a sparse update that retained every coordinate.
            let indices = (0..dense_len as u32).collect();
            Ok(CompressedUpdate::Sparse(SparseUpdate::new(
                indices, values, dense_len,
            )))
        }
        KIND_ENTROPY => decode_entropy_body(b, &mut cur, dense_len),
        KIND_SEGMENTED if allow_segmented => decode_segmented_body(b, &mut cur, dense_len),
        KIND_SEGMENTED => Err(WireError::Corrupt("nested segmented payload")),
        other => Err(WireError::UnknownKind(other)),
    }
}

fn header(kind: u8, dense_len: usize, capacity_hint: usize) -> BytesMut {
    let mut buf = BytesMut::with_capacity(4 + 10 + capacity_hint);
    buf.put_slice(&WIRE_MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(kind);
    put_varint(&mut buf, dense_len as u64);
    buf
}

fn put_indices(buf: &mut BytesMut, indices: &[u32]) {
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "wire indices must be strictly increasing"
    );
    put_varint(buf, indices.len() as u64);
    // Delta varints staged through a fixed stack block: a u32 gap is at most
    // five varint bytes, so flushing whenever fewer than five slots remain
    // keeps every write in-bounds while appending in block-sized slices
    // instead of one bounds-checked push per byte.
    let mut block = [0u8; 256];
    let mut fill = 0usize;
    let mut prev = 0u64;
    for (pos, &i) in indices.iter().enumerate() {
        let i = i as u64;
        let mut v = if pos == 0 { i } else { i - prev };
        prev = i;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                block[fill] = byte;
                fill += 1;
                break;
            }
            block[fill] = byte | 0x80;
            fill += 1;
        }
        if fill + 5 > block.len() {
            buf.put_slice(&block[..fill]);
            fill = 0;
        }
    }
    buf.put_slice(&block[..fill]);
}

/// Append `values` as little-endian f32s in fixed 16-value blocks: one
/// bounds-checked append per block instead of per value, which is what lets
/// the dense and sparse encoders run at memcpy-like speed.
fn put_f32s(buf: &mut BytesMut, values: &[f32]) {
    let mut block = [0u8; 64];
    for chunk in values.chunks(16) {
        for (slot, &v) in block.chunks_exact_mut(4).zip(chunk) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(&block[..chunk.len() * 4]);
    }
}

/// Encode a sparse update as a `KIND_SPARSE` buffer.
pub fn encode_sparse(update: &SparseUpdate) -> WireUpdate {
    let mut buf = header(KIND_SPARSE, update.dense_len(), update.nnz() * 7);
    put_indices(&mut buf, update.indices());
    put_f32s(&mut buf, update.values());
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode an uncompressed (ratio-1.0) update as a `KIND_DENSE` buffer: raw
/// f32 values with no per-coordinate index overhead.
pub fn encode_dense(values: &[f32]) -> WireUpdate {
    let mut buf = header(KIND_DENSE, values.len(), values.len() * 4);
    put_f32s(&mut buf, values);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode a dense quantized vector as a `KIND_QUANTIZED` buffer. `levels`
/// holds signed levels (`±level`, magnitude ≤ `2^(bits−1) − 1`).
pub fn encode_quantized(dense_len: usize, bits: u8, norm: f32, levels: &[i32]) -> WireUpdate {
    assert_eq!(levels.len(), dense_len, "one level per dense coordinate");
    let mut buf = header(
        KIND_QUANTIZED,
        dense_len,
        5 + (dense_len * bits as usize).div_ceil(8),
    );
    put_quantized_body(&mut buf, bits, norm, levels);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode a sparsified-then-quantized update as a `KIND_SPARSE_QUANTIZED`
/// buffer: `indices` are the retained coordinates, `levels` their signed
/// quantization levels.
pub fn encode_sparse_quantized(
    dense_len: usize,
    indices: &[u32],
    bits: u8,
    norm: f32,
    levels: &[i32],
) -> WireUpdate {
    assert_eq!(indices.len(), levels.len(), "one level per retained index");
    let mut buf = header(
        KIND_SPARSE_QUANTIZED,
        dense_len,
        indices.len() * 3 + 5 + (indices.len() * bits as usize).div_ceil(8),
    );
    put_indices(&mut buf, indices);
    put_quantized_body(&mut buf, bits, norm, levels);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode per-segment wire updates into one framed `KIND_SEGMENTED` buffer.
/// `dense_len` is the full vector's length; the parts' dense lengths must
/// tile it exactly (checked on decode) and no part may itself be segmented.
pub fn encode_segmented(dense_len: usize, parts: &[WireUpdate]) -> WireUpdate {
    assert!(!parts.is_empty(), "a segmented update needs >= 1 segment");
    let payload: usize = parts.iter().map(|p| p.len() + 5).sum();
    let mut buf = header(KIND_SEGMENTED, dense_len, payload);
    put_varint(&mut buf, parts.len() as u64);
    for p in parts {
        // Hard check, not a debug_assert: decode rejects nested frames, so a
        // nested part would produce a buffer that cannot decode its own
        // encoding. One byte compare per part keeps the failure at the
        // encoder with a pointed message.
        assert_ne!(
            p.kind(),
            Ok(KIND_SEGMENTED),
            "segmented payloads do not nest"
        );
        put_varint(&mut buf, p.len() as u64);
        buf.put_slice(p.as_bytes());
    }
    WireUpdate::from_bytes(buf.freeze())
}

/// Decode the body of a `KIND_SEGMENTED` buffer: parse and decode every
/// nested segment, then splice them into one update over the full vector.
/// The result is always sparse — a quantized segment (whose coordinate count
/// is bounded by its own byte length) becomes a full-density run at its
/// offset — so a crafted buffer can never force an allocation larger than
/// its segments' own decode guards admit.
fn decode_segmented_body(
    b: &[u8],
    cur: &mut usize,
    dense_len: usize,
) -> Result<CompressedUpdate, WireError> {
    let n = read_varint(b, cur)? as usize;
    if n == 0 {
        return Err(WireError::Corrupt("segmented update with no segments"));
    }
    // Every segment needs at least its one-byte length prefix; reject a
    // declared count the remaining buffer cannot hold before allocating.
    if n > b.len() - *cur {
        return Err(WireError::Truncated);
    }
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let mut covered = 0usize;
    for _ in 0..n {
        let plen_raw = read_varint(b, cur)?;
        if plen_raw > (b.len() - *cur) as u64 {
            return Err(WireError::Truncated);
        }
        let plen = plen_raw as usize;
        // Decode the part straight out of the parent buffer: no per-part
        // copy, and the part's header is validated exactly once (inside
        // `decode_slice`, which also rejects nested segmented frames).
        let update = decode_slice(&b[*cur..*cur + plen], false)?;
        let part_len = update.dense_len();
        if part_len > dense_len - covered {
            return Err(WireError::Corrupt("segment lengths exceed dense length"));
        }
        match update {
            CompressedUpdate::Sparse(s) => {
                for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                    indices.push(covered as u32 + i);
                    values.push(v);
                }
            }
            CompressedUpdate::Quantized { values: pv, .. } => {
                // Full-density run: every coordinate of the segment, in
                // order. `pv.len()` is bounded by the part's own byte length
                // (its quantized decode guard), so this never over-allocates.
                indices.extend((covered as u32)..(covered + part_len) as u32);
                values.extend_from_slice(&pv);
            }
        }
        covered += part_len;
        *cur += plen;
    }
    if covered != dense_len {
        return Err(WireError::Corrupt(
            "segment lengths do not cover the dense vector",
        ));
    }
    Ok(CompressedUpdate::Sparse(SparseUpdate::new(
        indices, values, dense_len,
    )))
}

fn put_quantized_body(buf: &mut BytesMut, bits: u8, norm: f32, levels: &[i32]) {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let max_level = max_level_for_bits(bits) as i32;
    buf.put_u8(bits);
    buf.put_f32_le(norm);
    // MSB-first bit packing: sign bit, then bits-1 magnitude bits, staged
    // through a fixed stack block so the stream appends in block-sized
    // slices instead of one bounds-checked push per byte. A field is at most
    // 16 bits (two flushed bytes per level), so checking for two free slots
    // after each level keeps every write in-bounds.
    let mut block = [0u8; 256];
    let mut fill = 0usize;
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &l in levels {
        let sign = (l < 0) as u64;
        let mag = l.unsigned_abs().min(max_level as u32) as u64;
        let field = (sign << (bits - 1)) | mag;
        acc = (acc << bits) | field;
        acc_bits += bits as u32;
        while acc_bits >= 8 {
            acc_bits -= 8;
            block[fill] = (acc >> acc_bits) as u8;
            fill += 1;
        }
        if fill + 2 > block.len() {
            buf.put_slice(&block[..fill]);
            fill = 0;
        }
    }
    if acc_bits > 0 {
        block[fill] = (acc << (8 - acc_bits)) as u8;
        fill += 1;
    }
    buf.put_slice(&block[..fill]);
}

/// Flag bit: the entropy payload carries sparse indices before the levels.
const ENTROPY_FLAG_SPARSE: u8 = 1;

/// Width of the adaptive tree coding index-gap bit-lengths (symbols 0..=31
/// cover every possible u32 gap).
const GAP_TREE_BITS: u32 = 5;

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Range-code a non-negative number as an adaptive bit-length symbol plus
/// the direct bits below the (implicit) leading one of `x + 1`.
fn rc_encode_num(enc: &mut RangeEncoder, tree: &mut BitTree, x: u32) {
    let y = x as u64 + 1;
    let bitlen = 64 - y.leading_zeros(); // 1..=32
    tree.encode(enc, bitlen - 1);
    enc.encode_direct((y & ((1u64 << (bitlen - 1)) - 1)) as u32, bitlen - 1);
}

fn rc_decode_num(dec: &mut RangeDecoder<'_>, tree: &mut BitTree) -> Result<u32, WireError> {
    let bitlen = tree.decode(dec)? + 1;
    let low = dec.decode_direct(bitlen - 1)? as u64;
    let y = (1u64 << (bitlen - 1)) | low;
    Ok((y - 1) as u32)
}

/// Range-code signed QSGD levels: per coordinate an adaptive magnitude tree
/// (two contexts keyed on whether the previous magnitude was non-zero) and,
/// for non-zero magnitudes only, an adaptive sign bit (context: previous
/// coded sign). A zero magnitude carries no sign — the bit-packed kinds
/// decode `±0` to level 0 either way, so dropping it is lossless.
fn rc_encode_levels(enc: &mut RangeEncoder, bits: u8, levels: &[i32]) {
    let tree_bits = bits as u32 - 1;
    let mut mag_trees = [BitTree::new(tree_bits), BitTree::new(tree_bits)];
    let mut sign_probs = [PROB_INIT; 2];
    let max_level = max_level_for_bits(bits);
    let mut ctx = 0usize;
    let mut prev_sign = 0usize;
    for &l in levels {
        let mag = l.unsigned_abs().min(max_level);
        mag_trees[ctx].encode(enc, mag);
        if mag != 0 {
            let neg = l < 0;
            enc.encode_bit(&mut sign_probs[prev_sign], neg);
            prev_sign = neg as usize;
        }
        ctx = (mag != 0) as usize;
    }
}

/// Decode `count` range-coded levels straight to dequantized values (same
/// fused `norm * level / max_level` arithmetic as the bit-packed decoder).
fn rc_decode_values(
    dec: &mut RangeDecoder<'_>,
    bits: u8,
    norm: f32,
    count: usize,
    cap_hint: usize,
) -> Result<Vec<f32>, WireError> {
    let tree_bits = bits as u32 - 1;
    let mut mag_trees = [BitTree::new(tree_bits), BitTree::new(tree_bits)];
    let mut sign_probs = [PROB_INIT; 2];
    let s = max_level_for_bits(bits) as f32;
    let mut values = Vec::with_capacity(count.min(cap_hint));
    let mut ctx = 0usize;
    let mut prev_sign = 0usize;
    for _ in 0..count {
        let mag = mag_trees[ctx].decode(dec)? as i32;
        let level = if mag != 0 {
            let neg = dec.decode_bit(&mut sign_probs[prev_sign])?;
            prev_sign = neg as usize;
            if neg {
                -mag
            } else {
                mag
            }
        } else {
            0
        };
        ctx = (mag != 0) as usize;
        values.push(norm * level as f32 / s);
    }
    Ok(values)
}

/// Encode a dense quantized vector with the adaptive range coder, falling
/// back to the bit-packed [`KIND_QUANTIZED`] layout whenever the coded
/// stream would not be strictly smaller — the entropy path never expands.
pub fn encode_quantized_rc(dense_len: usize, bits: u8, norm: f32, levels: &[i32]) -> WireUpdate {
    assert_eq!(levels.len(), dense_len, "one level per dense coordinate");
    let _ = max_level_for_bits(bits); // validates the range
    let mut enc = RangeEncoder::new();
    rc_encode_levels(&mut enc, bits, levels);
    let stream = enc.finish();
    let shared = 4 + varint_len(dense_len as u64);
    let entropy_total = shared + 2 + 4 + stream.len();
    let packed_total = shared + 1 + 4 + (dense_len * bits as usize).div_ceil(8);
    if entropy_total >= packed_total {
        return encode_quantized(dense_len, bits, norm, levels);
    }
    let mut buf = header(KIND_ENTROPY, dense_len, 6 + stream.len());
    buf.put_u8(0);
    buf.put_u8(bits);
    buf.put_f32_le(norm);
    buf.put_slice(&stream);
    WireUpdate::from_bytes(buf.freeze())
}

/// Encode a sparsified-then-quantized update with the adaptive range coder
/// (gaps and levels share one stream), falling back to the bit-packed
/// [`KIND_SPARSE_QUANTIZED`] layout whenever that would be no larger.
pub fn encode_sparse_quantized_rc(
    dense_len: usize,
    indices: &[u32],
    bits: u8,
    norm: f32,
    levels: &[i32],
) -> WireUpdate {
    assert_eq!(indices.len(), levels.len(), "one level per retained index");
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "wire indices must be strictly increasing"
    );
    let _ = max_level_for_bits(bits); // validates the range
    let mut enc = RangeEncoder::new();
    let mut gap_tree = BitTree::new(GAP_TREE_BITS);
    let mut prev = 0u64;
    let mut packed_index_bytes = 0usize;
    for (pos, &i) in indices.iter().enumerate() {
        let gap = if pos == 0 {
            i as u64
        } else {
            i as u64 - prev - 1
        };
        rc_encode_num(&mut enc, &mut gap_tree, gap as u32);
        packed_index_bytes += varint_len(if pos == 0 { i as u64 } else { i as u64 - prev });
        prev = i as u64;
    }
    rc_encode_levels(&mut enc, bits, levels);
    let stream = enc.finish();
    let nnz = indices.len();
    let shared = 4 + varint_len(dense_len as u64) + varint_len(nnz as u64);
    let entropy_total = shared + 2 + 4 + stream.len();
    let packed_total = shared + packed_index_bytes + 1 + 4 + (nnz * bits as usize).div_ceil(8);
    if entropy_total >= packed_total {
        return encode_sparse_quantized(dense_len, indices, bits, norm, levels);
    }
    let mut buf = header(KIND_ENTROPY, dense_len, 8 + stream.len());
    buf.put_u8(ENTROPY_FLAG_SPARSE);
    buf.put_u8(bits);
    buf.put_f32_le(norm);
    put_varint(&mut buf, nnz as u64);
    buf.put_slice(&stream);
    WireUpdate::from_bytes(buf.freeze())
}

/// Decode the body of a [`KIND_ENTROPY`] buffer. The coordinate count is
/// bounded by [`MAX_DECISIONS_PER_BYTE`] before any allocation, and the
/// range decoder errors with [`WireError::Truncated`] the moment the stream
/// runs dry — a crafted buffer can neither over-allocate nor fabricate data.
fn decode_entropy_body(
    b: &[u8],
    cur: &mut usize,
    dense_len: usize,
) -> Result<CompressedUpdate, WireError> {
    if b.len() < *cur + 6 {
        return Err(WireError::Truncated);
    }
    let flags = b[*cur];
    *cur += 1;
    if flags & !ENTROPY_FLAG_SPARSE != 0 {
        return Err(WireError::Corrupt("unknown entropy flags"));
    }
    let sparse = flags & ENTROPY_FLAG_SPARSE != 0;
    let bits = b[*cur];
    *cur += 1;
    if !(2..=16).contains(&bits) {
        return Err(WireError::Corrupt("bits out of range"));
    }
    let norm = read_f32_le(b, cur)?;
    let count = if sparse {
        let nnz = read_varint(b, cur)?;
        if nnz > dense_len as u64 {
            return Err(WireError::Corrupt("nnz exceeds dense length"));
        }
        nnz as usize
    } else {
        dense_len
    };
    let stream = &b[*cur..];
    if count > stream.len().saturating_mul(MAX_DECISIONS_PER_BYTE) {
        return Err(WireError::Truncated);
    }
    // Adversarial cap on up-front reservations: grow amortized beyond it.
    let cap_hint = stream.len().saturating_mul(8).max(64);
    let mut dec = RangeDecoder::new(stream)?;
    *cur = b.len();
    if sparse {
        let mut gap_tree = BitTree::new(GAP_TREE_BITS);
        let mut indices = Vec::with_capacity(count.min(cap_hint));
        let mut prev = 0u64;
        for pos in 0..count {
            let gap = rc_decode_num(&mut dec, &mut gap_tree)? as u64;
            let idx = if pos == 0 { gap } else { prev + gap + 1 };
            if idx >= dense_len as u64 {
                return Err(WireError::Corrupt("index out of range"));
            }
            indices.push(idx as u32);
            prev = idx;
        }
        let values = rc_decode_values(&mut dec, bits, norm, count, cap_hint)?;
        Ok(CompressedUpdate::Sparse(SparseUpdate::new(
            indices, values, dense_len,
        )))
    } else {
        let values = rc_decode_values(&mut dec, bits, norm, count, cap_hint)?;
        Ok(CompressedUpdate::Quantized {
            values,
            wire_bytes: b.len(),
        })
    }
}

fn decode_indices(b: &[u8], cur: &mut usize, dense_len: usize) -> Result<Vec<u32>, WireError> {
    let nnz = read_varint(b, cur)? as usize;
    if nnz > dense_len {
        return Err(WireError::Corrupt("nnz exceeds dense length"));
    }
    // Every index occupies at least one varint byte; reject a declared count
    // the remaining buffer cannot possibly hold before allocating for it
    // (a crafted header must not drive a huge allocation).
    if nnz > b.len() - *cur {
        return Err(WireError::Truncated);
    }
    let mut indices = Vec::with_capacity(nnz);
    let mut prev: u64 = 0;
    for pos in 0..nnz {
        // Gaps between retained coordinates are almost always < 128, so the
        // common case is a single continuation-free byte; fall back to the
        // general varint reader otherwise.
        let raw = match b.get(*cur) {
            Some(&byte) if byte < 0x80 => {
                *cur += 1;
                byte as u64
            }
            _ => read_varint(b, cur)?,
        };
        let idx = if pos == 0 {
            raw
        } else {
            if raw == 0 {
                return Err(WireError::Corrupt("indices not strictly increasing"));
            }
            prev + raw
        };
        if idx >= dense_len as u64 {
            return Err(WireError::Corrupt("index out of range"));
        }
        indices.push(idx as u32);
        prev = idx;
    }
    Ok(indices)
}

fn decode_sparse_body(
    b: &[u8],
    cur: &mut usize,
    dense_len: usize,
) -> Result<(Vec<u32>, Vec<f32>), WireError> {
    let indices = decode_indices(b, cur, dense_len)?;
    if b.len() < *cur + indices.len().saturating_mul(4) {
        return Err(WireError::Truncated);
    }
    let values: Vec<f32> = b[*cur..*cur + indices.len() * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    *cur += indices.len() * 4;
    Ok((indices, values))
}

/// Decode a bit-packed quantized body straight to dequantized `f32`s. The
/// unpack and the dequantize are fused — no intermediate level vector — but
/// each value is still computed as `norm * level / max_level` in exactly the
/// order the two-pass decoder used, so the output is bit-identical.
fn decode_quantized_body(
    b: &[u8],
    cur: &mut usize,
    count: usize,
) -> Result<(f32, Vec<f32>), WireError> {
    if b.len() < *cur + 5 {
        return Err(WireError::Truncated);
    }
    let bits = b[*cur];
    *cur += 1;
    if !(2..=16).contains(&bits) {
        return Err(WireError::Corrupt("bits out of range"));
    }
    let norm = read_f32_le(b, cur)?;
    // Bound the declared coordinate count by what the remaining bytes can
    // hold before any multiplication or allocation: a crafted dense_len must
    // neither overflow `count * bits` nor reserve gigabytes.
    if count > (b.len() - *cur).saturating_mul(8) / bits as usize {
        return Err(WireError::Truncated);
    }
    let packed_bytes = (count * bits as usize).div_ceil(8);
    let packed = &b[*cur..*cur + packed_bytes];
    let s = max_level_for_bits(bits) as f32;
    let sign_bit = 1u64 << (bits - 1);
    let mag_mask = sign_bit - 1;
    let values = if bits == 8 {
        // One byte per field: the unpack collapses to a branch-free byte map
        // (select sign, convert, multiply, divide) the compiler vectorizes.
        packed[..count]
            .iter()
            .map(|&f| {
                let mag = (f & 0x7f) as i32;
                let level = if f & 0x80 != 0 { -mag } else { mag };
                norm * level as f32 / s
            })
            .collect()
    } else {
        let mut values = Vec::with_capacity(count);
        let mut acc: u64 = 0;
        let mut acc_bits: u32 = 0;
        let mut bytes_in = packed.iter();
        for _ in 0..count {
            while acc_bits < bits as u32 {
                acc = (acc << 8) | *bytes_in.next().expect("guard sized the slice") as u64;
                acc_bits += 8;
            }
            let field = (acc >> (acc_bits - bits as u32)) & ((1u64 << bits) - 1);
            acc_bits -= bits as u32;
            let mag = (field & mag_mask) as i32;
            let level = if field & sign_bit != 0 { -mag } else { mag };
            values.push(norm * level as f32 / s);
        }
        values
    };
    *cur += packed_bytes;
    Ok((norm, values))
}

fn read_f32_le(b: &[u8], cur: &mut usize) -> Result<f32, WireError> {
    if b.len() < *cur + 4 {
        return Err(WireError::Truncated);
    }
    let v = f32::from_le_bytes([b[*cur], b[*cur + 1], b[*cur + 2], b[*cur + 3]]);
    *cur += 4;
    Ok(v)
}

/// Append an LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an LEB128 varint, advancing `cur`.
pub fn read_varint(b: &[u8], cur: &mut usize) -> Result<u64, WireError> {
    let mut out: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        if *cur >= b.len() {
            return Err(WireError::Truncated);
        }
        if shift >= 64 {
            return Err(WireError::Corrupt("varint overflow"));
        }
        let byte = b[*cur];
        *cur += 1;
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let b = buf.freeze();
            let mut cur = 0;
            assert_eq!(read_varint(&b, &mut cur).unwrap(), v);
            assert_eq!(cur, b.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut cur = 0;
        assert_eq!(read_varint(&[0x80], &mut cur), Err(WireError::Truncated));
    }

    #[test]
    fn sparse_wire_roundtrip_is_exact() {
        let s = SparseUpdate::new(vec![0, 7, 300, 5000], vec![1.5, -2.25, 0.125, 9.0], 10_000);
        let w = encode_sparse(&s);
        let back = w.decode().unwrap();
        assert_eq!(back.as_sparse().unwrap(), &s);
    }

    #[test]
    fn empty_sparse_update_encodes() {
        let s = SparseUpdate::empty(42);
        let back = encode_sparse(&s).decode().unwrap();
        assert_eq!(back.as_sparse().unwrap().nnz(), 0);
        assert_eq!(back.dense_len(), 42);
    }

    #[test]
    fn quantized_wire_roundtrip_recovers_levels() {
        // bits = 4 → max_level 7; signed levels survive packing exactly.
        let levels = vec![0, 7, -7, 3, -1, 2, 0, -5, 6];
        let w = encode_quantized(levels.len(), 4, 2.0, &levels);
        let back = w.decode().unwrap();
        let values = match back {
            CompressedUpdate::Quantized { values, wire_bytes } => {
                assert_eq!(wire_bytes, w.len());
                values
            }
            _ => panic!("expected quantized payload"),
        };
        for (&l, &v) in levels.iter().zip(values.iter()) {
            let expected = 2.0 * l as f32 / 7.0;
            assert!((v - expected).abs() < 1e-6, "level {l} decoded to {v}");
        }
    }

    #[test]
    fn sparse_quantized_wire_roundtrip() {
        let indices = vec![3u32, 10, 11, 99];
        let levels = vec![1, -3, 3, 2];
        let w = encode_sparse_quantized(100, &indices, 3, 1.0, &levels);
        let back = w.decode().unwrap();
        let s = back.as_sparse().unwrap();
        assert_eq!(s.indices(), &indices[..]);
        assert_eq!(s.dense_len(), 100);
        for (&l, &v) in levels.iter().zip(s.values().iter()) {
            assert!((v - l as f32 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn header_is_pinned() {
        // Golden bytes: any change to the header layout must be deliberate
        // (bump WIRE_VERSION and update this fixture).
        let s = SparseUpdate::new(vec![2, 5], vec![1.0, -1.0], 300);
        let w = encode_sparse(&s);
        let b = w.as_bytes();
        assert_eq!(&b[0..2], &WIRE_MAGIC);
        assert_eq!(b[2], 1, "wire version");
        assert_eq!(b[3], KIND_SPARSE);
        // dense_len 300 = varint [0xAC, 0x02], nnz 2, first index 2, gap 3.
        assert_eq!(&b[4..9], &[0xAC, 0x02, 0x02, 0x02, 0x03]);
        // Then two f32 LE values.
        assert_eq!(b.len(), 9 + 8);
        assert_eq!(&b[9..13], &1.0f32.to_le_bytes());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[1, 2])).decode(),
            Err(WireError::Truncated)
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0, 0, 1, 0, 0])).decode(),
            Err(WireError::BadMagic)
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0xB3, 0xF1, 99, 0, 0])).decode(),
            Err(WireError::UnsupportedVersion(99))
        );
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from_static(&[0xB3, 0xF1, 1, 9, 0])).decode(),
            Err(WireError::UnknownKind(9))
        );
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let s = SparseUpdate::new(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 8);
        let w = encode_sparse(&s);
        let cut = WireUpdate::from_bytes(Bytes::copy_from_slice(&w.as_bytes()[..w.len() - 5]));
        assert_eq!(cut.decode(), Err(WireError::Truncated));
    }

    #[test]
    fn dense_wire_roundtrip_is_exact_without_index_overhead() {
        let values = vec![1.5f32, -2.0, 0.0, 4.25];
        let w = encode_dense(&values);
        // header (4) + varint dense_len (1) + 4 × f32: dense bytes, not 2×.
        assert_eq!(w.len(), 5 + 16);
        assert_eq!(w.kind().unwrap(), KIND_DENSE);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.indices(), &[0, 1, 2, 3]);
        assert_eq!(s.values(), &values[..]);
    }

    #[test]
    fn crafted_huge_counts_are_rejected_without_allocating() {
        // Quantized payload declaring u32::MAX coordinates: must error, not
        // overflow `count * bits` or reserve gigabytes.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_QUANTIZED);
        put_varint(&mut buf, u32::MAX as u64); // dense_len
        buf.put_u8(8); // bits
        buf.put_f32_le(1.0); // norm
        buf.put_u8(0xAB); // one stray payload byte
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Sparse payload declaring a huge dense_len and nnz with a tiny body.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SPARSE);
        put_varint(&mut buf, u32::MAX as u64); // dense_len
        put_varint(&mut buf, (u32::MAX - 1) as u64); // nnz
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Dense payload declaring more values than the buffer holds.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_DENSE);
        put_varint(&mut buf, u32::MAX as u64);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn dense_len_beyond_u32_is_corrupt_for_every_kind() {
        // Indices are u32 on the wire, so a varint dense_len above u32::MAX
        // can never be valid. The old decoder reconstructed dense indices via
        // `0..dense_len as u32`, silently truncating such buffers; now every
        // payload kind rejects them up front.
        for kind in [
            KIND_SPARSE,
            KIND_QUANTIZED,
            KIND_SPARSE_QUANTIZED,
            KIND_DENSE,
            KIND_SEGMENTED,
            KIND_ENTROPY,
        ] {
            for dense_len in [u32::MAX as u64 + 1, 1u64 << 62, u64::MAX] {
                let mut buf = BytesMut::new();
                buf.put_slice(&WIRE_MAGIC);
                buf.put_u8(WIRE_VERSION);
                buf.put_u8(kind);
                put_varint(&mut buf, dense_len);
                // Enough trailing bytes that a truncating decoder would have
                // happily read a small body instead of erroring.
                buf.put_slice(&[0u8; 64]);
                assert_eq!(
                    WireUpdate::from_bytes(buf.freeze()).decode(),
                    Err(WireError::Corrupt("dense length exceeds u32 index range")),
                    "kind {kind} dense_len {dense_len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_sparse_quantized_rejects_unsorted_indices() {
        encode_sparse_quantized(100, &[5, 3], 4, 1.0, &[1, 2]);
    }

    #[test]
    fn segmented_roundtrip_splices_sparse_parts_with_offsets() {
        let a = encode_sparse(&SparseUpdate::new(vec![1, 3], vec![1.0, 2.0], 5));
        let b = encode_sparse(&SparseUpdate::new(vec![0, 6], vec![-1.0, 4.0], 7));
        let w = encode_segmented(12, &[a.clone(), b.clone()]);
        assert_eq!(w.kind().unwrap(), KIND_SEGMENTED);
        // Exact framing: header + varint(dense_len) + varint(n) + per part
        // (varint(len) + len) — the overhead is part of the honest byte count.
        assert_eq!(w.len(), 4 + 1 + 1 + (1 + a.len()) + (1 + b.len()));
        assert_eq!(w.segment_byte_lens().unwrap(), vec![a.len(), b.len()]);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.dense_len(), 12);
        assert_eq!(s.indices(), &[1, 3, 5, 11]);
        assert_eq!(s.values(), &[1.0, 2.0, -1.0, 4.0]);
    }

    #[test]
    fn segmented_quantized_part_becomes_a_full_density_run() {
        let sparse = encode_sparse(&SparseUpdate::new(vec![2], vec![9.0], 4));
        let quant = encode_quantized(3, 4, 7.0, &[7, -7, 0]);
        let w = encode_segmented(7, &[sparse, quant]);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.dense_len(), 7);
        // Segment 1 contributes its retained coordinate; segment 2 every
        // coordinate of its run (indices 4..7).
        assert_eq!(s.indices(), &[2, 4, 5, 6]);
        assert_eq!(s.values()[0], 9.0);
        assert!((s.values()[1] - 7.0).abs() < 1e-6);
        assert!((s.values()[2] + 7.0).abs() < 1e-6);
        assert_eq!(s.values()[3], 0.0);
    }

    #[test]
    fn segmented_rejects_crafted_frames() {
        let part = encode_sparse(&SparseUpdate::new(vec![0], vec![1.0], 3));

        // Lengths that do not tile the dense vector.
        let short = encode_segmented(5, std::slice::from_ref(&part));
        assert_eq!(
            short.decode(),
            Err(WireError::Corrupt(
                "segment lengths do not cover the dense vector"
            ))
        );
        let long = encode_segmented(2, std::slice::from_ref(&part));
        assert_eq!(
            long.decode(),
            Err(WireError::Corrupt("segment lengths exceed dense length"))
        );

        // Nested segmented payloads are rejected (no recursion bombs). The
        // encoder debug-asserts against this, so hand-build the frame.
        let inner = encode_segmented(3, std::slice::from_ref(&part));
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, inner.len() as u64);
        buf.put_slice(inner.as_bytes());
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("nested segmented payload"))
        );

        // Zero segments.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 0);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("segmented update with no segments"))
        );

        // A declared segment count the buffer cannot hold: must error before
        // any allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, u32::MAX as u64);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // A segment length prefix pointing past the end of the buffer.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SEGMENTED);
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1000);
        buf.put_u8(0xAB);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Truncating the last segment mid-payload is caught by the nested
        // decode.
        let full = encode_segmented(3, &[part]);
        let cut =
            WireUpdate::from_bytes(Bytes::copy_from_slice(&full.as_bytes()[..full.len() - 3]));
        assert_eq!(cut.decode(), Err(WireError::Truncated));
        assert_eq!(cut.segment_byte_lens(), None);
    }

    /// Gradient-like values: the distribution QSGD levels actually follow in
    /// training (most coordinates far below the vector's L2 norm).
    fn gradient_like(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.37).sin() * ((i as f32) * 0.011).cos() * 0.1)
            .collect()
    }

    fn qsgd_levels_for(values: &[f32], bits: u8) -> (f32, Vec<i32>) {
        use fl_tensor::rng::SplitMix64;
        let mut rng = SplitMix64::new(42);
        crate::quantize::qsgd_levels(values, max_level_for_bits(bits), &mut rng)
    }

    #[test]
    fn entropy_quantized_decodes_bit_identically_to_packed() {
        for bits in [2u8, 4, 6, 8, 12, 16] {
            let (norm, levels) = qsgd_levels_for(&gradient_like(4096), bits);
            let rc = encode_quantized_rc(levels.len(), bits, norm, &levels);
            let packed = encode_quantized(levels.len(), bits, norm, &levels);
            assert_eq!(rc.kind().unwrap(), KIND_ENTROPY, "bits {bits}");
            let rc_values = match rc.decode().unwrap() {
                CompressedUpdate::Quantized { values, wire_bytes } => {
                    assert_eq!(wire_bytes, rc.len());
                    values
                }
                _ => panic!("expected quantized payload"),
            };
            let packed_values = packed.decode().unwrap().into_dense();
            assert!(
                rc_values
                    .iter()
                    .zip(packed_values.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "bits {bits}: entropy decode differs from bit-packed decode"
            );
        }
    }

    #[test]
    fn entropy_beats_bitpacked_on_every_benchmark_level_distribution() {
        // The acceptance claim: on each level distribution the benchmarks
        // exercise — dense quantization at several widths, and the
        // sparsify-then-quantize composition — the range-coded buffer is
        // strictly smaller than the bit-packed one.
        for bits in [2u8, 4, 6, 8] {
            let (norm, levels) = qsgd_levels_for(&gradient_like(8192), bits);
            let rc = encode_quantized_rc(levels.len(), bits, norm, &levels);
            let packed = encode_quantized(levels.len(), bits, norm, &levels);
            assert_eq!(rc.kind().unwrap(), KIND_ENTROPY);
            assert!(
                rc.len() < packed.len(),
                "bits {bits}: entropy {} >= packed {}",
                rc.len(),
                packed.len()
            );
        }
        for bits in [4u8, 6, 8] {
            // Top-K-style retained subset: every 17th coordinate.
            let dense = gradient_like(8192);
            let indices: Vec<u32> = (0..8192u32).step_by(17).collect();
            let retained: Vec<f32> = indices.iter().map(|&i| dense[i as usize]).collect();
            let (norm, levels) = qsgd_levels_for(&retained, bits);
            let rc = encode_sparse_quantized_rc(8192, &indices, bits, norm, &levels);
            let packed = encode_sparse_quantized(8192, &indices, bits, norm, &levels);
            assert_eq!(rc.kind().unwrap(), KIND_ENTROPY);
            assert!(
                rc.len() < packed.len(),
                "sparse bits {bits}: entropy {} >= packed {}",
                rc.len(),
                packed.len()
            );
        }
    }

    #[test]
    fn entropy_sparse_roundtrip_matches_packed_decode() {
        let indices = vec![3u32, 10, 11, 99, 512, 513, 2000];
        let levels = vec![1, -3, 3, 2, 0, -1, 7];
        let rc = encode_sparse_quantized_rc(4096, &indices, 4, 1.5, &levels);
        let packed = encode_sparse_quantized(4096, &indices, 4, 1.5, &levels);
        let a = rc.decode().unwrap().into_sparse().unwrap();
        let b = packed.decode().unwrap().into_sparse().unwrap();
        assert_eq!(a.indices(), b.indices());
        assert_eq!(a.dense_len(), b.dense_len());
        assert!(a
            .values()
            .iter()
            .zip(b.values().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn entropy_falls_back_to_bitpacked_instead_of_expanding() {
        // Incompressible levels: a full-range pseudo-random pattern at a
        // tiny length, where the range coder's 5-byte flush alone outweighs
        // the packed payload. The encoder must ship the packed kind.
        let levels: Vec<i32> = (0..8).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let w = encode_quantized_rc(8, 2, 1.0, &levels);
        assert_eq!(w.kind().unwrap(), KIND_QUANTIZED);
        assert_eq!(
            w.as_bytes(),
            encode_quantized(8, 2, 1.0, &levels).as_bytes()
        );

        let indices: Vec<u32> = (0..4).collect();
        let w = encode_sparse_quantized_rc(100, &indices, 2, 1.0, &[1, -1, 1, -1]);
        assert_eq!(w.kind().unwrap(), KIND_SPARSE_QUANTIZED);

        // The never-expand property across widths and lengths: the entropy
        // entry point is never larger than the bit-packed encoder's output.
        for bits in [2u8, 5, 9] {
            for n in [0usize, 1, 7, 100, 2048] {
                let (norm, levels) = qsgd_levels_for(&gradient_like(n), bits);
                let rc = encode_quantized_rc(n, bits, norm, &levels);
                let packed = encode_quantized(n, bits, norm, &levels);
                assert!(
                    rc.len() <= packed.len(),
                    "bits {bits} n {n}: {} > {}",
                    rc.len(),
                    packed.len()
                );
            }
        }
    }

    #[test]
    fn entropy_golden_bytes_are_pinned() {
        // Golden fixture for the kind-5 layout: header, flags, bits, norm,
        // then the range-coded stream. Any drift in the range coder's
        // initialisation, adaptation rate, or payload order changes these
        // bytes and must be a deliberate format bump.
        let levels: Vec<i32> = (0..64)
            .map(|i| match i % 16 {
                0 => 1,
                8 => -1,
                _ => 0,
            })
            .collect();
        let w = encode_quantized_rc(64, 4, 2.0, &levels);
        assert_eq!(w.kind().unwrap(), KIND_ENTROPY);
        let b = w.as_bytes();
        assert_eq!(&b[0..2], &WIRE_MAGIC);
        assert_eq!(b[2], WIRE_VERSION);
        assert_eq!(b[3], KIND_ENTROPY);
        assert_eq!(b[4], 64, "dense_len varint");
        assert_eq!(b[5], 0, "flags: dense");
        assert_eq!(b[6], 4, "bits");
        assert_eq!(&b[7..11], &2.0f32.to_le_bytes());
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("dense stream: {:02X?}", &b[11..]);
        }
        assert_eq!(
            &b[11..],
            &[
                0x00, 0x1F, 0xFF, 0xFC, 0x98, 0x7D, 0x5E, 0x56, 0x8D, 0x3C, 0x66, 0x76, 0xAA, 0xA7,
                0x4E, 0x15, 0xDA, 0x3D, 0x00,
            ],
            "range-coded stream drifted"
        );

        let indices: Vec<u32> = (0..100u32).map(|i| i * 9 + (i % 5)).collect();
        let slevels: Vec<i32> = (0..100)
            .map(|i| match i % 5 {
                0 => 1,
                3 => -1,
                _ => 1,
            })
            .collect();
        let sw = encode_sparse_quantized_rc(1000, &indices, 4, 1.0, &slevels);
        assert_eq!(sw.kind().unwrap(), KIND_ENTROPY);
        let sb = sw.as_bytes();
        assert_eq!(sb[3], KIND_ENTROPY);
        assert_eq!(&sb[4..6], &[0xE8, 0x07], "dense_len 1000 varint");
        assert_eq!(sb[6], 1, "flags: sparse");
        assert_eq!(sb[7], 4, "bits");
        assert_eq!(&sb[8..12], &1.0f32.to_le_bytes());
        assert_eq!(sb[12], 100, "nnz varint");
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("sparse stream: {:02X?}", &sb[13..]);
        }
        assert_eq!(
            &sb[13..],
            &[
                0x00, 0x00, 0xE6, 0xC5, 0xF7, 0x89, 0xB3, 0x01, 0x8D, 0xDD, 0x21, 0x54, 0xD0, 0x47,
                0x08, 0xCD, 0xD3, 0x2A, 0x41, 0xC7, 0x6D, 0x73, 0x2E, 0x4B, 0xA7, 0x51, 0x52, 0x14,
                0x98, 0x92, 0x03, 0xB6, 0x5A, 0x04, 0x42, 0x11, 0xCF, 0x6C, 0xED, 0xAB, 0xB8, 0x0B,
                0x92, 0x05, 0x0B, 0xAE, 0x0C, 0x6B, 0x3F, 0xF5, 0x6C, 0xD8, 0xA0, 0xAA, 0x23, 0x7B,
                0xF7, 0x39, 0x86, 0xB0, 0xB9, 0x27, 0x26, 0x45, 0xB2, 0xE7, 0x43, 0x36, 0xD9, 0xDF,
                0x64, 0xDD, 0xD6, 0xA7, 0x69, 0x58, 0x7F, 0x9E, 0x91, 0xA1, 0xFA, 0xAE, 0x21, 0x00,
            ],
            "range-coded sparse stream drifted"
        );
    }

    #[test]
    fn entropy_rejects_crafted_and_truncated_streams() {
        // dense_len 100 keeps the varint to one byte, so the flags and bits
        // offsets below are fixed at 5 and 6.
        let (norm, levels) = qsgd_levels_for(&gradient_like(100), 4);
        let w = encode_quantized_rc(100, 4, norm, &levels);
        assert_eq!(w.kind().unwrap(), KIND_ENTROPY);

        // Truncating anywhere inside the stream is a hard error.
        for cut in [5, 6, 10, 12, w.len() / 2, w.len() - 1] {
            let t = WireUpdate::from_bytes(Bytes::copy_from_slice(&w.as_bytes()[..cut]));
            assert_eq!(t.decode(), Err(WireError::Truncated), "cut at {cut}");
        }

        // Unknown flag bits are corrupt, not silently ignored.
        let mut raw = w.as_bytes().to_vec();
        raw[5] = 0x82;
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from(raw)).decode(),
            Err(WireError::Corrupt("unknown entropy flags"))
        );

        // Out-of-range bit width.
        let mut raw = w.as_bytes().to_vec();
        raw[6] = 17;
        assert_eq!(
            WireUpdate::from_bytes(Bytes::from(raw)).decode(),
            Err(WireError::Corrupt("bits out of range"))
        );

        // A huge declared dense_len with a tiny stream must be rejected by
        // the decisions-per-byte bound before any allocation happens.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_ENTROPY);
        put_varint(&mut buf, u32::MAX as u64); // dense_len
        buf.put_u8(0); // flags: dense
        buf.put_u8(4); // bits
        buf.put_f32_le(1.0); // norm
        buf.put_slice(&[0xAB; 8]); // tiny stream
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Truncated)
        );

        // Sparse flavour: nnz larger than dense_len is corrupt.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_ENTROPY);
        put_varint(&mut buf, 10); // dense_len
        buf.put_u8(1); // flags: sparse
        buf.put_u8(4); // bits
        buf.put_f32_le(1.0); // norm
        put_varint(&mut buf, 11); // nnz > dense_len
        buf.put_slice(&[0u8; 16]);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("nnz exceeds dense length"))
        );

        // Arbitrary byte soup in the stream either decodes to in-range
        // levels or errors — never panics, never over-allocates. (The gap
        // decoder can produce an out-of-range index, which must be Corrupt.)
        for seed in 0u8..32 {
            let mut buf = BytesMut::new();
            buf.put_slice(&WIRE_MAGIC);
            buf.put_u8(WIRE_VERSION);
            buf.put_u8(KIND_ENTROPY);
            put_varint(&mut buf, 64); // dense_len
            buf.put_u8(1); // flags: sparse
            buf.put_u8(4); // bits
            buf.put_f32_le(1.0); // norm
            put_varint(&mut buf, 32); // nnz
            let soup: Vec<u8> = (0u8..24)
                .map(|i| seed.wrapping_mul(37).wrapping_add(i.wrapping_mul(91)))
                .collect();
            buf.put_slice(&soup);
            match WireUpdate::from_bytes(buf.freeze()).decode() {
                Ok(update) => {
                    let s = update.into_sparse().unwrap();
                    assert!(s.indices().iter().all(|&i| i < 64));
                }
                Err(WireError::Truncated | WireError::Corrupt(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn segmented_frames_carry_entropy_parts() {
        let (norm, levels) = qsgd_levels_for(&gradient_like(512), 4);
        let rc = encode_quantized_rc(512, 4, norm, &levels);
        assert_eq!(rc.kind().unwrap(), KIND_ENTROPY);
        let sparse = encode_sparse(&SparseUpdate::new(vec![2], vec![9.0], 4));
        let w = encode_segmented(516, &[sparse, rc.clone()]);
        let s = w.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.dense_len(), 516);
        assert_eq!(s.nnz(), 1 + 512);
        assert_eq!(w.segment_byte_lens().unwrap()[1], rc.len());
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        // Hand-built sparse buffer with an index beyond dense_len.
        let mut buf = BytesMut::new();
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(KIND_SPARSE);
        put_varint(&mut buf, 4); // dense_len
        put_varint(&mut buf, 1); // nnz
        put_varint(&mut buf, 9); // index 9 >= 4
        buf.put_f32_le(1.0);
        assert_eq!(
            WireUpdate::from_bytes(buf.freeze()).decode(),
            Err(WireError::Corrupt("index out of range"))
        );
    }
}
