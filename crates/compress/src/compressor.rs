//! The [`Compressor`] trait shared by every compression method.

use crate::sparse::SparseUpdate;
use serde::{Deserialize, Serialize};

/// The result of compressing one client's dense model delta.
///
/// Sparsifiers produce [`CompressedUpdate::Sparse`]; quantizers keep every
/// coordinate but at reduced precision, so they produce
/// [`CompressedUpdate::Quantized`] with an explicit wire size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CompressedUpdate {
    /// A sparsified update (Top-K, Rand-K, Threshold, …).
    Sparse(SparseUpdate),
    /// A dense but quantized update: dequantized values plus the number of
    /// bytes the quantized representation would occupy on the wire.
    Quantized {
        /// Dequantized (lossy) values, same length as the original vector.
        values: Vec<f32>,
        /// Size of the quantized representation in bytes.
        wire_bytes: usize,
    },
}

impl CompressedUpdate {
    /// Bytes this update occupies on the wire.
    pub fn wire_size_bytes(&self) -> usize {
        match self {
            CompressedUpdate::Sparse(s) => s.wire_size_bytes(),
            CompressedUpdate::Quantized { wire_bytes, .. } => *wire_bytes,
        }
    }

    /// Reconstruct the (lossy) dense update.
    pub fn to_dense(&self) -> Vec<f32> {
        match self {
            CompressedUpdate::Sparse(s) => s.to_dense(),
            CompressedUpdate::Quantized { values, .. } => values.clone(),
        }
    }

    /// Consume the update and return the (lossy) dense vector. The quantized
    /// path moves its value buffer instead of cloning it (the decode side of
    /// the codec pipeline and error feedback both take ownership this way,
    /// mirroring [`CompressedUpdate::into_sparse`]).
    pub fn into_dense(self) -> Vec<f32> {
        match self {
            CompressedUpdate::Sparse(s) => s.to_dense(),
            CompressedUpdate::Quantized { values, .. } => values,
        }
    }

    /// Length of the original dense vector.
    pub fn dense_len(&self) -> usize {
        match self {
            CompressedUpdate::Sparse(s) => s.dense_len(),
            CompressedUpdate::Quantized { values, .. } => values.len(),
        }
    }

    /// The sparse payload, if this is a sparsified update.
    pub fn as_sparse(&self) -> Option<&SparseUpdate> {
        match self {
            CompressedUpdate::Sparse(s) => Some(s),
            CompressedUpdate::Quantized { .. } => None,
        }
    }

    /// Consume the update and return the sparse payload, if this is a
    /// sparsified update. Lets aggregation take ownership of the indices and
    /// values instead of cloning them (the federated round loop moves every
    /// cohort update this way).
    pub fn into_sparse(self) -> Option<SparseUpdate> {
        match self {
            CompressedUpdate::Sparse(s) => Some(s),
            CompressedUpdate::Quantized { .. } => None,
        }
    }
}

/// A (possibly stateless) lossy compressor of dense update vectors.
///
/// `ratio` is the *target* compression ratio — the fraction of coordinates
/// (or bytes) to retain; implementations clamp it to a feasible range.
/// Implementations must be deterministic given the same input, ratio and
/// internal state so experiments replay exactly.
pub trait Compressor: Send + Sync {
    /// Compress a dense update with the given target ratio.
    fn compress(&self, dense: &[f32], ratio: f64) -> CompressedUpdate;

    /// Short name used in experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_dispatch() {
        let s = CompressedUpdate::Sparse(SparseUpdate::new(vec![0, 1], vec![1.0, 2.0], 4));
        assert_eq!(s.wire_size_bytes(), 16);
        let q = CompressedUpdate::Quantized {
            values: vec![0.0; 4],
            wire_bytes: 6,
        };
        assert_eq!(q.wire_size_bytes(), 6);
        assert_eq!(q.dense_len(), 4);
        assert!(s.as_sparse().is_some());
        assert!(q.as_sparse().is_none());
    }

    #[test]
    fn into_sparse_moves_the_payload() {
        let s = CompressedUpdate::Sparse(SparseUpdate::new(vec![0, 1], vec![1.0, 2.0], 4));
        let expected = s.as_sparse().unwrap().clone();
        assert_eq!(s.into_sparse(), Some(expected));
        let q = CompressedUpdate::Quantized {
            values: vec![0.0; 4],
            wire_bytes: 6,
        };
        assert!(q.into_sparse().is_none());
    }

    #[test]
    fn into_dense_moves_the_quantized_buffer() {
        let q = CompressedUpdate::Quantized {
            values: vec![1.0, -2.0],
            wire_bytes: 3,
        };
        assert_eq!(q.into_dense(), vec![1.0, -2.0]);
        let s = CompressedUpdate::Sparse(SparseUpdate::new(vec![1], vec![5.0], 3));
        assert_eq!(s.into_dense(), vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn to_dense_dispatch() {
        let s = CompressedUpdate::Sparse(SparseUpdate::new(vec![1], vec![5.0], 3));
        assert_eq!(s.to_dense(), vec![0.0, 5.0, 0.0]);
        let q = CompressedUpdate::Quantized {
            values: vec![1.0, 2.0],
            wire_bytes: 2,
        };
        assert_eq!(q.to_dense(), vec![1.0, 2.0]);
    }
}
