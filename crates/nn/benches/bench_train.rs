//! Fused (workspace) vs allocating training step on the default experiment
//! MLP — the microbenchmark behind the committed `BENCH_train.json` numbers.
//!
//! Both variants compute bit-identical parameter trajectories (pinned by the
//! `workspace_equivalence` property tests); the fused path simply reuses
//! every intermediate buffer instead of reallocating it per batch.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_nn::{mlp, Sgd, SoftmaxCrossEntropy, Workspace};
use fl_tensor::rng::Xoshiro256;
use fl_tensor::{Shape, Tensor};
use std::hint::black_box;

const FEATURES: usize = 384;
const BATCH: usize = 64;
const CLASSES: usize = 10;

fn setup() -> (fl_nn::Sequential, Tensor, Vec<usize>) {
    let mut rng = Xoshiro256::new(1);
    let model = mlp(FEATURES, &[128, 64], CLASSES, &mut rng);
    let x = Tensor::rand_normal(Shape::matrix(BATCH, FEATURES), 0.0, 1.0, &mut rng);
    let y: Vec<usize> = (0..BATCH).map(|i| i % CLASSES).collect();
    (model, x, y)
}

fn bench_step(c: &mut Criterion) {
    // Allocating reference: the classic wrapper calls, which clone the
    // output/gradient tensors on every pass.
    let (mut model, x, y) = setup();
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    c.bench_function("sgd_step_alloc_batch64_mlp", |b| {
        b.iter(|| {
            model.zero_grad();
            let logits = model.forward(black_box(&x));
            loss.forward(&logits, &y);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model);
        })
    });

    // Fused path: every buffer lives in the caller-owned workspace.
    let (mut model, x, y) = setup();
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();
    let mut grad = Tensor::empty();
    c.bench_function("sgd_step_fused_batch64_mlp", |b| {
        b.iter(|| {
            model.zero_grad();
            let logits = model.forward_in(black_box(&x), &mut ws);
            loss.forward(logits, &y);
            loss.backward_in(&mut grad);
            model.backward_in(&grad, &mut ws);
            opt.step(&mut model);
        })
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_step
}
criterion_main!(benches);
