//! Property tests pinning the workspace training path to the allocating one.
//!
//! The `forward_in` / `backward_in` methods reuse buffers batch after batch;
//! these tests drive ONE workspace across randomly shaped models and batches
//! and assert the results stay bit-identical to fresh allocating calls — the
//! failure mode they guard against is stale workspace state (a buffer kept
//! from a previous, differently-shaped batch) leaking into a later pass.

use fl_nn::model::logistic_regression;
use fl_nn::{mlp, small_cnn_flat, Sequential, Sgd, SoftmaxCrossEntropy, Workspace};
use fl_tensor::rng::Xoshiro256;
use fl_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn build_model(arch: u8, input_dim: usize, classes: usize, seed: u64) -> Sequential {
    let mut rng = Xoshiro256::new(seed);
    match arch % 4 {
        0 => logistic_regression(input_dim, classes, &mut rng),
        1 => mlp(input_dim, &[9], classes, &mut rng),
        2 => mlp(input_dim, &[7, 5], classes, &mut rng),
        // Flat CNN: input_dim must be channels * size * size; the caller
        // passes input_dim = 2 * 4 * 4 for this arch.
        _ => small_cnn_flat(2, 4, 3, classes, &mut rng),
    }
}

fn arch_input_dim(arch: u8, dense_dim: usize) -> usize {
    if arch % 4 == 3 {
        2 * 4 * 4
    } else {
        dense_dim
    }
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape().dims(), b.shape().dims(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One reused workspace over a sequence of random (model, batch) pairs
    /// computes the same logits and input gradients as the allocating
    /// wrappers with fresh per-model state.
    #[test]
    fn reused_workspace_matches_allocating_paths(
        seed in 0u64..1_000_000,
        steps in collection::vec((0u8..4, 1usize..6, 2usize..7), 2..6),
    ) {
        let mut ws = Workspace::new(); // deliberately shared across everything
        let classes = 3usize;
        for (i, &(arch, batch, dense_dim)) in steps.iter().enumerate() {
            let input_dim = arch_input_dim(arch, dense_dim);
            let model_seed = seed.wrapping_add(i as u64);
            let mut reference = build_model(arch, input_dim, classes, model_seed);
            let mut subject = build_model(arch, input_dim, classes, model_seed);
            let mut data_rng = Xoshiro256::new(model_seed ^ 0x9e37);
            let x = Tensor::rand_normal(Shape::matrix(batch, input_dim), 0.0, 1.0, &mut data_rng);
            let g = Tensor::rand_normal(Shape::matrix(batch, classes), 0.0, 1.0, &mut data_rng);

            let ref_logits = reference.forward(&x);
            let ref_dx = reference.backward(&g);

            let logits = subject.forward_in(&x, &mut ws).clone();
            assert_bits_eq(&logits, &ref_logits, "forward");
            let dx = subject.backward_in(&g, &mut ws).clone();
            assert_bits_eq(&dx, &ref_dx, "backward");
            for (sg, rg) in subject.grads().iter().zip(reference.grads().iter()) {
                assert_bits_eq(sg, rg, "param grads");
            }
        }
    }

    /// A full multi-step SGD training loop through the workspace path lands
    /// on bit-identical parameters to the allocating path, including with
    /// momentum and weight decay.
    #[test]
    fn training_loop_bitwise_equivalent(
        seed in 0u64..1_000_000,
        arch in 0u8..4,
        batch in 1usize..6,
        momentum_sel in 0u8..2,
        n_steps in 1usize..5,
    ) {
        let classes = 3usize;
        let input_dim = arch_input_dim(arch, 5);
        let mut reference = build_model(arch, input_dim, classes, seed);
        let mut subject = build_model(arch, input_dim, classes, seed);
        let mu = if momentum_sel == 1 { 0.9 } else { 0.0 };
        let mut ref_opt = Sgd::new(0.05, mu, 1e-3);
        let mut sub_opt = Sgd::new(0.05, mu, 1e-3);
        let mut ref_loss = SoftmaxCrossEntropy::new();
        let mut sub_loss = SoftmaxCrossEntropy::new();
        let mut ws = Workspace::new();
        let mut grad = Tensor::empty();
        let mut data_rng = Xoshiro256::new(seed ^ 0xabcd);
        for step in 0..n_steps {
            let x = Tensor::rand_normal(Shape::matrix(batch, input_dim), 0.0, 1.0, &mut data_rng);
            let labels: Vec<usize> = (0..batch).map(|i| (i + step) % classes).collect();

            reference.zero_grad();
            let ref_logits = reference.forward(&x);
            let ref_l = ref_loss.forward(&ref_logits, &labels);
            let ref_g = ref_loss.backward();
            reference.backward(&ref_g);
            ref_opt.step(&mut reference);

            subject.zero_grad();
            let logits = subject.forward_in(&x, &mut ws);
            let sub_l = sub_loss.forward(logits, &labels);
            sub_loss.backward_in(&mut grad);
            subject.backward_in(&grad, &mut ws);
            sub_opt.step(&mut subject);

            assert_eq!(sub_l.to_bits(), ref_l.to_bits(), "loss diverged at step {step}");
            for (sp, rp) in subject.params().iter().zip(reference.params().iter()) {
                assert_bits_eq(sp, rp, "params after step");
            }
        }
    }
}
