//! Stochastic gradient descent with optional momentum and weight decay.

use crate::model::Sequential;
use fl_tensor::{kernels, Tensor};

/// Plain SGD: `p <- p - lr * (g + wd * p)` with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an optimizer. `momentum` and `weight_decay` may be 0.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replace the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Apply one update step using the gradients currently stored in `model`.
    ///
    /// Allocation-free: parameters and gradients are visited in place (no
    /// gradient clones) and the update runs through the fused
    /// [`fl_tensor::kernels`] loops; the velocity buffers are allocated once
    /// on the first momentum step and reused afterwards.
    pub fn step(&mut self, model: &mut Sequential) {
        if self.momentum > 0.0 && self.velocity.is_empty() {
            let velocity = &mut self.velocity;
            model.visit_params_and_grads(&mut |p, _g| {
                velocity.push(Tensor::zeros(p.shape().clone()));
            });
        }
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut i = 0usize;
        model.visit_params_and_grads(&mut |param, grad| {
            if mu > 0.0 {
                // v <- mu * v + g + wd * p ; p <- p - lr * v
                kernels::sgd_momentum_step(
                    lr,
                    mu,
                    wd,
                    param.data_mut(),
                    velocity[i].data_mut(),
                    grad.data(),
                );
            } else {
                kernels::sgd_step(lr, wd, param.data_mut(), grad.data());
            }
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use fl_tensor::rng::Xoshiro256;
    use fl_tensor::{Shape, Tensor};

    fn one_layer_model() -> Sequential {
        let mut rng = Xoshiro256::new(1);
        Sequential::new().push(Box::new(Linear::new(2, 1, &mut rng)))
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut model = one_layer_model();
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]);
        model.zero_grad();
        let y = model.forward(&x);
        // dL/dy = 1 => dW = x, db = 1
        model.backward(&Tensor::full(y.shape().clone(), 1.0));
        let w_before: Vec<f32> = model.params()[0].data().to_vec();
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        opt.step(&mut model);
        let w_after = model.params()[0].data();
        for (b, a) in w_before.iter().zip(w_after.iter()) {
            assert!((b - a - 0.5).abs() < 1e-6, "expected decrease by lr*grad");
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut model = one_layer_model();
        model.params_mut()[0].fill(1.0);
        model.zero_grad();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.step(&mut model);
        for &w in model.params()[0].data() {
            assert!((w - 0.95).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Constant gradient of 1: with momentum 0.9 the second step is larger.
        let mut model = one_layer_model();
        model.params_mut()[0].fill(0.0);
        model.params_mut()[1].fill(0.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]);

        model.zero_grad();
        let y = model.forward(&x);
        model.backward(&Tensor::full(y.shape().clone(), 1.0));
        opt.step(&mut model);
        let after_one = model.params()[0].data()[0];

        model.zero_grad();
        let y = model.forward(&x);
        model.backward(&Tensor::full(y.shape().clone(), 1.0));
        opt.step(&mut model);
        let after_two = model.params()[0].data()[0];

        let step1 = -after_one;
        let step2 = after_one - after_two;
        assert!(
            step2 > step1 * 1.5,
            "momentum should grow the step: {step1} vs {step2}"
        );
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    #[should_panic]
    fn zero_lr_rejected() {
        Sgd::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_momentum_rejected() {
        Sgd::new(0.1, 1.0, 0.0);
    }
}
