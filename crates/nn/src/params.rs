//! Parameter flattening — the bridge between the model and the compression
//! pipeline.
//!
//! Federated compression operates on a single flat vector per client
//! (the model *delta* `w_t - w_{t,k,E}`); these helpers pack a model's
//! parameters into that vector and scatter a vector back into the model.

use crate::model::Sequential;

/// Total number of trainable scalars of the model.
pub fn num_params(model: &Sequential) -> usize {
    model.num_params()
}

/// Concatenate every parameter tensor into one flat `Vec<f32>` (layer order,
/// then tensor order within the layer — the same order `unflatten_params`
/// expects).
pub fn flatten_params(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.num_params());
    for p in model.params() {
        out.extend_from_slice(p.data());
    }
    out
}

/// Write a flat vector back into the model's parameters. Panics if the length
/// does not match the model's parameter count.
pub fn unflatten_params(model: &mut Sequential, flat: &[f32]) {
    let expected = model.num_params();
    assert_eq!(
        flat.len(),
        expected,
        "flat vector has {} entries but the model has {} parameters",
        flat.len(),
        expected
    );
    let mut offset = 0usize;
    for p in model.params_mut() {
        let n = p.numel();
        p.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    }
}

/// Concatenate every gradient tensor into one flat vector, aligned with
/// [`flatten_params`].
pub fn flatten_grads(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.num_params());
    for g in model.grads() {
        out.extend_from_slice(g.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mlp;
    use fl_tensor::rng::Xoshiro256;

    #[test]
    fn flatten_roundtrip() {
        let mut rng = Xoshiro256::new(1);
        let mut model = mlp(6, &[10], 4, &mut rng);
        let flat = flatten_params(&model);
        assert_eq!(flat.len(), num_params(&model));
        let mut modified = flat.clone();
        for (i, x) in modified.iter_mut().enumerate() {
            *x = i as f32;
        }
        unflatten_params(&mut model, &modified);
        let flat2 = flatten_params(&model);
        assert_eq!(flat2, modified);
    }

    #[test]
    fn flatten_preserves_layer_order() {
        let mut rng = Xoshiro256::new(2);
        let model = mlp(3, &[2], 2, &mut rng);
        let flat = flatten_params(&model);
        // First parameter tensor is the first Linear's weight [3,2].
        assert_eq!(&flat[..6], model.params()[0].data());
    }

    #[test]
    #[should_panic]
    fn unflatten_rejects_wrong_length() {
        let mut rng = Xoshiro256::new(3);
        let mut model = mlp(3, &[2], 2, &mut rng);
        unflatten_params(&mut model, &[0.0; 3]);
    }

    #[test]
    fn flatten_grads_matches_param_layout() {
        let mut rng = Xoshiro256::new(4);
        let model = mlp(5, &[7], 3, &mut rng);
        let grads = flatten_grads(&model);
        assert_eq!(grads.len(), num_params(&model));
        assert!(grads.iter().all(|&g| g == 0.0));
    }
}
