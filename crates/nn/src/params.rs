//! Parameter flattening — the bridge between the model and the compression
//! pipeline — and the [`ParamLayout`] that preserves the layer structure the
//! flat vector erases.
//!
//! Federated compression operates on a single flat vector per client
//! (the model *delta* `w_t - w_{t,k,E}`); these helpers pack a model's
//! parameters into that vector and scatter a vector back into the model.
//! [`ParamLayout`] records, for the same packing order, which slice of the
//! flat vector belongs to which named parameter tensor (`linear0.weight`,
//! `conv2d1.bias`, …), so layer-aware codecs can treat each segment
//! differently without changing the wire-level contract.

use crate::model::Sequential;

/// One named slice of the flat parameter vector: a single parameter tensor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSegment {
    /// Segment name, `"{kind}{index}.{param}"` — e.g. `linear0.weight`:
    /// the lowercased layer kind, a per-kind counter over the layers that
    /// carry parameters, and the layer's name for the tensor.
    pub name: String,
    /// Offset of the segment's first scalar in the flat vector.
    pub offset: usize,
    /// Number of scalars in the segment (the tensor's `numel`).
    pub len: usize,
}

impl ParamSegment {
    /// The segment's index range within the flat vector.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// The ordered, named segmentation of a model's flat parameter vector,
/// aligned with [`flatten_params`] / [`unflatten_params`] (layer order, then
/// tensor order within the layer).
///
/// ```
/// use fl_nn::{mlp, ParamLayout};
/// use fl_tensor::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::new(1);
/// let model = mlp(6, &[10], 4, &mut rng);
/// let layout = ParamLayout::of(&model);
/// let names: Vec<&str> = layout.names().collect();
/// assert_eq!(
///     names,
///     ["linear0.weight", "linear0.bias", "linear1.weight", "linear1.bias"]
/// );
/// assert_eq!(layout.total_len(), model.num_params());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParamLayout {
    segments: Vec<ParamSegment>,
    total_len: usize,
}

impl ParamLayout {
    /// Derive the layout of a model's flat parameter vector. Layers without
    /// trainable parameters (activations, pooling) contribute no segments;
    /// layers of the same kind are numbered in model order (`linear0`,
    /// `linear1`, …), counting only parameterised layers.
    pub fn of(model: &Sequential) -> Self {
        let mut segments = Vec::new();
        let mut offset = 0usize;
        let mut kind_counts: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for layer in model.layers() {
            let params = layer.params();
            if params.is_empty() {
                continue;
            }
            let kind = layer.name().to_ascii_lowercase();
            let index = kind_counts.entry(kind.clone()).or_insert(0);
            let names = layer.param_names();
            for (i, p) in params.iter().enumerate() {
                let n = p.numel();
                if n == 0 {
                    continue;
                }
                let pname = names.get(i).cloned().unwrap_or_else(|| format!("p{i}"));
                segments.push(ParamSegment {
                    name: format!("{kind}{index}.{pname}"),
                    offset,
                    len: n,
                });
                offset += n;
            }
            *index += 1;
        }
        Self {
            segments,
            total_len: offset,
        }
    }

    /// Build a layout from explicit `(name, len)` pairs (tests and custom
    /// models). Offsets are cumulative in iteration order; zero-length
    /// segments are skipped.
    pub fn from_segments(segments: impl IntoIterator<Item = (String, usize)>) -> Self {
        let mut out = Vec::new();
        let mut offset = 0usize;
        for (name, len) in segments {
            if len == 0 {
                continue;
            }
            out.push(ParamSegment { name, offset, len });
            offset += len;
        }
        Self {
            segments: out,
            total_len: offset,
        }
    }

    /// The segments, in flat-vector order.
    pub fn segments(&self) -> &[ParamSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// True when the model has no trainable parameters.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total scalars covered (the model's flat parameter count).
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Segment names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.segments.iter().map(|s| s.name.as_str())
    }

    /// Check that a flat vector matches this layout's total length.
    pub fn check(&self, flat: &[f32]) -> Result<(), LayoutError> {
        if flat.len() == self.total_len {
            Ok(())
        } else {
            Err(LayoutError {
                expected: self.total_len,
                got: flat.len(),
            })
        }
    }

    /// The slice of `flat` belonging to segment `i`. Panics if `flat` is
    /// shorter than the layout or `i` is out of range.
    pub fn slice<'a>(&self, flat: &'a [f32], i: usize) -> &'a [f32] {
        let seg = &self.segments[i];
        &flat[seg.range()]
    }
}

impl std::fmt::Display for ParamLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}[{}]", s.name, s.len)?;
        }
        Ok(())
    }
}

/// A flat parameter vector does not match the model's layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutError {
    /// The model's flat parameter count.
    pub expected: usize,
    /// The offered vector's length.
    pub got: usize,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flat vector has {} entries but the model layout has {} parameters",
            self.got, self.expected
        )
    }
}

impl std::error::Error for LayoutError {}

/// Total number of trainable scalars of the model.
pub fn num_params(model: &Sequential) -> usize {
    model.num_params()
}

/// Concatenate every parameter tensor into one flat `Vec<f32>` (layer order,
/// then tensor order within the layer — the same order `unflatten_params`
/// expects and [`ParamLayout`] names).
pub fn flatten_params(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.num_params());
    for p in model.params() {
        out.extend_from_slice(p.data());
    }
    out
}

/// Write a flat vector back into the model's parameters, rejecting a
/// length-mismatched vector with a typed [`LayoutError`] instead of writing
/// anything.
pub fn try_unflatten_params(model: &mut Sequential, flat: &[f32]) -> Result<(), LayoutError> {
    let expected = model.num_params();
    if flat.len() != expected {
        return Err(LayoutError {
            expected,
            got: flat.len(),
        });
    }
    unflatten_params(model, flat);
    Ok(())
}

/// Write a flat vector back into the model's parameters. The length check is
/// a `debug_assert` only — callers on the hot path (the round engine) uphold
/// the invariant by construction; code accepting externally supplied vectors
/// should use [`try_unflatten_params`] and surface the [`LayoutError`].
pub fn unflatten_params(model: &mut Sequential, flat: &[f32]) {
    debug_assert_eq!(
        flat.len(),
        model.num_params(),
        "flat vector has {} entries but the model has {} parameters",
        flat.len(),
        model.num_params()
    );
    let mut offset = 0usize;
    for p in model.params_mut() {
        let n = p.numel();
        p.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    }
}

/// Per-segment L1 mass of a flat vector under a layout: one `Σ|xᵢ|` per
/// segment, in layout order. The round engine feeds the aggregated update
/// through this to observe where the model's gradient signal concentrates —
/// the telemetry an adaptive plan policy splits its byte budget by.
pub fn segment_l1_masses(layout: &ParamLayout, flat: &[f32]) -> Vec<f64> {
    debug_assert!(layout.check(flat).is_ok(), "{:?}", layout.check(flat));
    (0..layout.num_segments())
        .map(|i| layout.slice(flat, i).iter().map(|&x| x.abs() as f64).sum())
        .collect()
}

/// Concatenate every gradient tensor into one flat vector, aligned with
/// [`flatten_params`].
pub fn flatten_grads(model: &Sequential) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.num_params());
    for g in model.grads() {
        out.extend_from_slice(g.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{mlp, small_cnn};
    use fl_tensor::rng::Xoshiro256;

    #[test]
    fn flatten_roundtrip() {
        let mut rng = Xoshiro256::new(1);
        let mut model = mlp(6, &[10], 4, &mut rng);
        let flat = flatten_params(&model);
        assert_eq!(flat.len(), num_params(&model));
        let mut modified = flat.clone();
        for (i, x) in modified.iter_mut().enumerate() {
            *x = i as f32;
        }
        unflatten_params(&mut model, &modified);
        let flat2 = flatten_params(&model);
        assert_eq!(flat2, modified);
    }

    #[test]
    fn flatten_preserves_layer_order() {
        let mut rng = Xoshiro256::new(2);
        let model = mlp(3, &[2], 2, &mut rng);
        let flat = flatten_params(&model);
        // First parameter tensor is the first Linear's weight [3,2].
        assert_eq!(&flat[..6], model.params()[0].data());
    }

    #[test]
    #[should_panic]
    fn unflatten_rejects_wrong_length_in_debug() {
        let mut rng = Xoshiro256::new(3);
        let mut model = mlp(3, &[2], 2, &mut rng);
        unflatten_params(&mut model, &[0.0; 3]);
    }

    #[test]
    fn try_unflatten_reports_a_typed_layout_error() {
        let mut rng = Xoshiro256::new(3);
        let mut model = mlp(3, &[2], 2, &mut rng);
        let expected = model.num_params();
        let before = flatten_params(&model);
        let err = try_unflatten_params(&mut model, &[0.0; 3]).unwrap_err();
        assert_eq!(err, LayoutError { expected, got: 3 });
        assert!(err.to_string().contains("3 entries"));
        // Nothing was written.
        assert_eq!(flatten_params(&model), before);
        // The matching length succeeds.
        let ok = vec![0.5; expected];
        try_unflatten_params(&mut model, &ok).unwrap();
        assert_eq!(flatten_params(&model), ok);
    }

    #[test]
    fn flatten_grads_matches_param_layout() {
        let mut rng = Xoshiro256::new(4);
        let model = mlp(5, &[7], 3, &mut rng);
        let grads = flatten_grads(&model);
        assert_eq!(grads.len(), num_params(&model));
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn segment_l1_masses_sum_per_segment() {
        let layout =
            ParamLayout::from_segments([("a.weight".to_string(), 3), ("a.bias".to_string(), 2)]);
        let flat = [1.0f32, -2.0, 3.0, -0.5, 0.5];
        let masses = segment_l1_masses(&layout, &flat);
        assert_eq!(masses, vec![6.0, 1.0]);
        // A zero vector yields all-zero masses (the allocator's fallback case).
        assert_eq!(segment_l1_masses(&layout, &[0.0; 5]), vec![0.0, 0.0],);
    }

    #[test]
    fn layout_names_and_offsets_align_with_flatten() {
        let mut rng = Xoshiro256::new(5);
        let model = mlp(4, &[3, 2], 2, &mut rng);
        let layout = ParamLayout::of(&model);
        let names: Vec<&str> = layout.names().collect();
        assert_eq!(
            names,
            [
                "linear0.weight",
                "linear0.bias",
                "linear1.weight",
                "linear1.bias",
                "linear2.weight",
                "linear2.bias",
            ]
        );
        assert_eq!(layout.total_len(), model.num_params());
        // Segments tile the vector: contiguous, in order, no gaps.
        let mut offset = 0;
        for seg in layout.segments() {
            assert_eq!(seg.offset, offset);
            offset += seg.len;
        }
        assert_eq!(offset, layout.total_len());
        // Each segment's slice is exactly the corresponding tensor's data.
        let flat = flatten_params(&model);
        for (i, p) in model.params().iter().enumerate() {
            assert_eq!(layout.slice(&flat, i), p.data());
        }
    }

    #[test]
    fn cnn_layout_counts_per_kind() {
        let mut rng = Xoshiro256::new(6);
        let model = small_cnn(3, 8, 4, 10, &mut rng);
        let layout = ParamLayout::of(&model);
        let names: Vec<&str> = layout.names().collect();
        assert_eq!(
            names,
            [
                "conv2d0.weight",
                "conv2d0.bias",
                "conv2d1.weight",
                "conv2d1.bias",
                "linear0.weight",
                "linear0.bias",
            ]
        );
        assert_eq!(layout.total_len(), model.num_params());
    }

    #[test]
    fn layout_check_and_from_segments() {
        let layout =
            ParamLayout::from_segments([("a.weight".to_string(), 4), ("a.bias".to_string(), 2)]);
        assert_eq!(layout.num_segments(), 2);
        assert_eq!(layout.total_len(), 6);
        assert_eq!(layout.segments()[1].range(), 4..6);
        assert!(layout.check(&[0.0; 6]).is_ok());
        assert_eq!(
            layout.check(&[0.0; 5]),
            Err(LayoutError {
                expected: 6,
                got: 5
            })
        );
        assert_eq!(layout.to_string(), "a.weight[4] a.bias[2]");
        // Zero-length segments are dropped.
        let trimmed = ParamLayout::from_segments([("x".to_string(), 0), ("y".to_string(), 3)]);
        assert_eq!(trimmed.num_segments(), 1);
        assert_eq!(trimmed.total_len(), 3);
    }

    #[test]
    fn empty_model_has_empty_layout() {
        let layout = ParamLayout::of(&Sequential::new());
        assert!(layout.is_empty());
        assert_eq!(layout.total_len(), 0);
    }
}
