//! Parameter-free activation layers.

use crate::layer::Layer;
use crate::workspace::LayerWs;
use fl_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Default)]
pub struct Relu {
    fallback: LayerWs,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        out.copy_from(input);
        ws.mask.clear();
        ws.mask.extend(input.data().iter().map(|&x| x > 0.0));
        out.map_inplace(|x| if x > 0.0 { x } else { 0.0 });
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "Relu backward called before forward");
        assert_eq!(
            ws.mask.len(),
            grad_output.numel(),
            "Relu backward size mismatch"
        );
        grad_input.copy_from(grad_output);
        for (g, &m) in grad_input.data_mut().iter_mut().zip(ws.mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Default)]
pub struct Tanh {
    fallback: LayerWs,
}

impl Tanh {
    /// New Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        out.copy_from(input);
        out.map_inplace(|x| x.tanh());
        ws.ensure_bufs(1);
        ws.bufs[0].copy_from(out);
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "Tanh backward called before forward");
        grad_input.copy_from(grad_output);
        for (g, &y) in grad_input
            .data_mut()
            .iter_mut()
            .zip(ws.bufs[0].data().iter())
        {
            *g *= 1.0 - y * y;
        }
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::Shape;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        r.forward(&x);
        let g = r.backward(&Tensor::from_slice(&[10.0, 10.0, 10.0]));
        assert_eq!(g.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn relu_has_no_params() {
        let r = Relu::new();
        assert!(r.params().is_empty());
        assert_eq!(r.num_params(), 0);
    }

    #[test]
    fn tanh_forward_range() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[-100.0, 0.0, 100.0]);
        let y = t.forward(&x);
        assert!((y.data()[0] + 1.0).abs() < 1e-5);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tanh_gradient_at_zero_is_identity() {
        let mut t = Tanh::new();
        let x = Tensor::zeros(Shape::vector(3));
        t.forward(&x);
        let g = t.backward(&Tensor::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(g.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn tanh_numerical_gradient() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[0.3, -0.7]);
        t.forward(&x);
        let analytic = t.backward(&Tensor::from_slice(&[1.0, 1.0]));
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = t.forward(&xp).data()[i];
            let fm = t.forward(&xm).data()[i];
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((analytic.data()[i] - numeric).abs() < 1e-3);
        }
    }
}
