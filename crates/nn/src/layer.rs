//! The [`Layer`] trait: explicit forward/backward with per-layer parameter
//! and gradient accessors.

use fl_tensor::Tensor;

/// A differentiable layer.
///
/// The contract is the classic two-pass one:
/// * `forward` maps an input batch to an output batch, caching whatever it
///   needs for the backward pass;
/// * `backward` receives `dL/d(output)` and returns `dL/d(input)`, while
///   accumulating `dL/d(params)` into the layer's gradient buffers;
/// * `params` / `params_mut` / `grads` expose the trainable state so the
///   optimizer and the federated-learning parameter flattening can reach it.
///
/// Inputs are rank-2 tensors `[batch, features]` for dense layers and rank-4
/// tensors `[batch, channels, height, width]` for convolutional layers.
pub trait Layer: Send {
    /// Forward pass over a batch. Must cache activations needed by `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass. `grad_output` is `dL/d(output)` for the most recent
    /// `forward`; returns `dL/d(input)` and accumulates parameter gradients.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable references to the trainable parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable references to the trainable parameter tensors (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable references to the gradient tensors, aligned with `params`.
    fn grads(&self) -> Vec<&Tensor>;

    /// Reset all gradient buffers to zero.
    fn zero_grad(&mut self);

    /// Human-readable layer name for debugging and reports.
    fn name(&self) -> &'static str;

    /// Names of the trainable parameter tensors, aligned with
    /// [`params`](Self::params). Layers with the classic weight + bias pair
    /// override this (`["weight", "bias"]`); the default names parameters
    /// positionally (`p0`, `p1`, …). [`crate::params::ParamLayout`] combines
    /// these with a per-kind layer counter into segment names like
    /// `linear0.weight` or `conv2d1.bias`.
    fn param_names(&self) -> Vec<String> {
        (0..self.params().len()).map(|i| format!("p{i}")).collect()
    }

    /// Total number of trainable scalars in this layer.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}
