//! The [`Layer`] trait: explicit forward/backward with per-layer parameter
//! and gradient accessors.

use crate::workspace::LayerWs;
use fl_tensor::Tensor;

/// A differentiable layer.
///
/// The contract is the classic two-pass one, expressed allocation-free:
/// * `forward_in` maps an input batch to an output batch written into a
///   caller-provided tensor, caching whatever the backward pass needs in the
///   caller-provided [`LayerWs`] scratch slot;
/// * `backward_in` receives `dL/d(output)` and writes `dL/d(input)` into a
///   caller-provided tensor, while accumulating `dL/d(params)` into the
///   layer's gradient buffers;
/// * the allocating [`forward`](Layer::forward) / [`backward`](Layer::backward)
///   wrappers run the same code over a private fallback workspace and return
///   fresh tensors, so callers that don't manage workspaces keep working;
/// * `params` / `params_mut` / `grads` / `visit_params_and_grads` expose the
///   trainable state so the optimizer and the federated-learning parameter
///   flattening can reach it.
///
/// Inputs are rank-2 tensors `[batch, features]` for dense layers and rank-4
/// tensors `[batch, channels, height, width]` for convolutional layers.
///
/// `forward_in` takes `&self`: all cross-pass state lives in the workspace, so
/// a shared model can run concurrent forward passes over per-thread
/// workspaces (the parallel evaluation path relies on this).
pub trait Layer: Send + Sync {
    /// Forward pass over a batch, writing the output into `out` (resized as
    /// needed) and caching backward state in `ws`.
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs);

    /// Backward pass. `grad_output` is `dL/d(output)` for the most recent
    /// `forward_in` through `ws`; writes `dL/d(input)` into `grad_input` and
    /// accumulates parameter gradients.
    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs);

    /// The layer's private fallback workspace slot backing the allocating
    /// [`forward`](Layer::forward) / [`backward`](Layer::backward) wrappers.
    fn fallback_ws(&mut self) -> &mut LayerWs;

    /// Allocating forward wrapper over [`forward_in`](Layer::forward_in).
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut ws = std::mem::take(self.fallback_ws());
        let mut out = Tensor::empty();
        self.forward_in(input, &mut out, &mut ws);
        *self.fallback_ws() = ws;
        out
    }

    /// Allocating backward wrapper over [`backward_in`](Layer::backward_in).
    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut ws = std::mem::take(self.fallback_ws());
        let mut grad_input = Tensor::empty();
        self.backward_in(grad_output, &mut grad_input, &mut ws);
        *self.fallback_ws() = ws;
        grad_input
    }

    /// Immutable references to the trainable parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable references to the trainable parameter tensors (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable references to the gradient tensors, aligned with `params`.
    fn grads(&self) -> Vec<&Tensor>;

    /// Visit each `(param, grad)` pair in [`params`](Self::params) order with
    /// simultaneous mutable parameter / immutable gradient access — the
    /// allocation-free accessor behind the fused optimizer step. Layers
    /// without parameters implement this as a no-op.
    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor));

    /// Reset all gradient buffers to zero.
    fn zero_grad(&mut self);

    /// Human-readable layer name for debugging and reports.
    fn name(&self) -> &'static str;

    /// Names of the trainable parameter tensors, aligned with
    /// [`params`](Self::params). Layers with the classic weight + bias pair
    /// override this (`["weight", "bias"]`); the default names parameters
    /// positionally (`p0`, `p1`, …). [`crate::params::ParamLayout`] combines
    /// these with a per-kind layer counter into segment names like
    /// `linear0.weight` or `conv2d1.bias`.
    fn param_names(&self) -> Vec<String> {
        (0..self.params().len()).map(|i| format!("p{i}")).collect()
    }

    /// Total number of trainable scalars in this layer.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}
