//! `fl-nn` — a minimal neural-network training engine for the bwfl
//! federated-learning simulator.
//!
//! The paper trains ResNet-18 with PyTorch; this crate is the from-scratch
//! substitute: a small set of layers (fully-connected, ReLU, 2-D convolution,
//! pooling), a softmax cross-entropy loss, plain SGD with momentum/weight
//! decay, and utilities for flattening a model's parameters into the single
//! dense vector that the compression pipeline operates on.
//!
//! Layers follow a classic explicit forward/backward contract
//! ([`layer::Layer`]); models are built with [`model::Sequential`] or the
//! convenience constructors [`model::mlp`] and [`model::small_cnn`].
//!
//! The training hot path is allocation-free: a [`workspace::Workspace`] owns
//! every intermediate buffer, and the `forward_in` / `backward_in` methods on
//! [`model::Sequential`] and [`layer::Layer`] reuse those buffers batch after
//! batch (the allocating `forward` / `backward` wrappers remain for
//! convenience and compute bit-identical results).

pub mod activation;
pub mod conv;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod model;
pub mod optim;
pub mod params;
pub mod workspace;

pub use conv::ConvShapeError;
pub use layer::Layer;
pub use loss::SoftmaxCrossEntropy;
pub use model::{mlp, mlp_zeroed, small_cnn, small_cnn_flat, Sequential};
pub use optim::Sgd;
pub use params::{
    flatten_params, num_params, segment_l1_masses, try_unflatten_params, unflatten_params,
    LayoutError, ParamLayout, ParamSegment,
};
pub use workspace::{LayerWs, Workspace};
