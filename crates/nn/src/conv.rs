//! 2-D convolution and pooling layers (im2col based).
//!
//! These layers exist so that the image-shaped synthetic datasets can be
//! trained with a genuinely convolutional model (the paper's backbone is
//! ResNet-18); the default experiment configuration uses the MLP for speed,
//! and [`crate::model::small_cnn`] wires these layers into a compact CNN.

use crate::layer::Layer;
use crate::workspace::LayerWs;
use fl_tensor::matmul::{matmul_a_bt_into, matmul_at_b_into, matmul_into};
use fl_tensor::rng::Rng;
use fl_tensor::{Shape, Tensor};
use std::fmt;

// Workspace scratch channels.
const WS_COLS: usize = 0; // im2col matrix [b*ho*wo, in_ch*k*k]
const WS_PATCHES: usize = 1; // out_patches / grad_patches [b*ho*wo, out_ch]
const WS_DW: usize = 2; // weight-gradient scratch
const WS_DCOLS: usize = 3; // gradient w.r.t. the im2col matrix
const WS_GBIAS: usize = 4; // bias-gradient scratch
const WS_WT: usize = 5; // W^T scratch for the forward matmul

/// Error returned when a convolution kernel does not fit its padded input —
/// the configuration whose naive `h + 2p + 1 - k` output size would wrap
/// below zero in `usize` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShapeError {
    /// Kernel side length.
    pub kernel: usize,
    /// Input height including both pads.
    pub padded_h: usize,
    /// Input width including both pads.
    pub padded_w: usize,
}

impl fmt::Display for ConvShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {k}x{k} does not fit the padded input {h}x{w}",
            k = self.kernel,
            h = self.padded_h,
            w = self.padded_w
        )
    }
}

impl std::error::Error for ConvShapeError {}

/// 2-D convolution with square kernels, stride 1 and symmetric zero padding.
///
/// Input `[batch, in_ch, h, w]`, output `[batch, out_ch, h_out, w_out]`.
pub struct Conv2d {
    weight: Tensor, // [out_ch, in_ch * k * k]
    bias: Tensor,   // [out_ch]
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    padding: usize,
    fallback: LayerWs,
}

impl Conv2d {
    /// Create a convolution layer with Kaiming-initialised weights.
    pub fn new<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel >= 1, "Conv2d kernel must be at least 1x1");
        let fan_in = in_ch * kernel * kernel;
        Self {
            weight: Tensor::kaiming(Shape::matrix(out_ch, fan_in), fan_in, rng),
            bias: Tensor::zeros(Shape::vector(out_ch)),
            grad_weight: Tensor::zeros(Shape::matrix(out_ch, fan_in)),
            grad_bias: Tensor::zeros(Shape::vector(out_ch)),
            in_ch,
            out_ch,
            kernel,
            padding,
            fallback: LayerWs::new(),
        }
    }

    /// Output spatial size for an `h`×`w` input, or a [`ConvShapeError`] when
    /// the kernel is larger than the padded input (which would otherwise wrap
    /// the `usize` subtraction and request an absurd im2col allocation).
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), ConvShapeError> {
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if self.kernel > padded_h || self.kernel > padded_w {
            return Err(ConvShapeError {
                kernel: self.kernel,
                padded_h,
                padded_w,
            });
        }
        Ok((padded_h + 1 - self.kernel, padded_w + 1 - self.kernel))
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        self.output_hw(h, w)
            .unwrap_or_else(|e| panic!("Conv2d forward: {e}"))
    }

    /// im2col: unfold the padded input into a `[batch*h_out*w_out, in_ch*k*k]`
    /// matrix written into the reusable `cols` tensor.
    fn im2col_into(&self, input: &Tensor, cols: &mut Tensor) {
        let dims = input.shape().dims();
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (ho, wo) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.padding as isize;
        let cols_per_patch = c * k * k;
        cols.resize_to(&[b * ho * wo, cols_per_patch]);
        cols.fill(0.0);
        let cd = cols.data_mut();
        let data = input.data();
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch_base = ((bi * ho + oy) * wo + ox) * cols_per_patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                let col_idx = patch_base + (ci * k + ky) * k + kx;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    cd[col_idx] =
                                        data[((bi * c + ci) * h + iy as usize) * w + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// col2im: fold gradients w.r.t. the unfolded matrix back into input
    /// shape, written into the reusable `out` tensor.
    fn col2im_into(&self, cols: &Tensor, b: usize, c: usize, h: usize, w: usize, out: &mut Tensor) {
        let (ho, wo) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.padding as isize;
        let cols_per_patch = c * k * k;
        out.resize_to(&[b, c, h, w]);
        out.fill(0.0);
        let od = out.data_mut();
        let cd = cols.data();
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch_base = ((bi * ho + oy) * wo + ox) * cols_per_patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    od[((bi * c + ci) * h + iy as usize) * w + ix as usize] +=
                                        cd[patch_base + (ci * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d: channel mismatch");
        let (b, h, w) = (dims[0], dims[2], dims[3]);
        let (ho, wo) = self.out_hw(h, w);
        ws.set_dims(dims);
        // cols: [b*ho*wo, c*k*k]; out_patches = cols @ W^T: [b*ho*wo, out_ch]
        ws.ensure_bufs(WS_WT + 1);
        {
            let (cols, patches, wt) = ws.buf_triple(WS_COLS, WS_PATCHES, WS_WT);
            self.im2col_into(input, cols);
            matmul_a_bt_into(cols, &self.weight, wt, patches);
        }
        // Rearrange to [b, out_ch, ho, wo] and add bias.
        let pd = ws.bufs[WS_PATCHES].data();
        let bias = self.bias.data();
        out.resize_to(&[b, self.out_ch, ho, wo]);
        let od = out.data_mut();
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch = (bi * ho + oy) * wo + ox;
                    for oc in 0..self.out_ch {
                        od[((bi * self.out_ch + oc) * ho + oy) * wo + ox] =
                            pd[patch * self.out_ch + oc] + bias[oc];
                    }
                }
            }
        }
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "Conv2d backward called before forward");
        let (b, c, h, w) = (ws.dims[0], ws.dims[1], ws.dims[2], ws.dims[3]);
        let (ho, wo) = self.out_hw(h, w);
        let god = grad_output.data();
        // Rearrange grad_output [b, out_ch, ho, wo] -> [b*ho*wo, out_ch]
        {
            let (patches, gbias) = ws.buf_pair(WS_PATCHES, WS_GBIAS);
            patches.resize_to(&[b * ho * wo, self.out_ch]);
            gbias.resize_to(&[self.out_ch]);
            gbias.fill(0.0);
            let gp = patches.data_mut();
            let gb = gbias.data_mut();
            for bi in 0..b {
                for oc in 0..self.out_ch {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let v = god[((bi * self.out_ch + oc) * ho + oy) * wo + ox];
                            gp[((bi * ho + oy) * wo + ox) * self.out_ch + oc] = v;
                            gb[oc] += v;
                        }
                    }
                }
            }
        }
        // dW = grad_patches^T @ cols : [out_ch, c*k*k]
        {
            let (patches, cols, dw) = ws.buf_triple(WS_PATCHES, WS_COLS, WS_DW);
            matmul_at_b_into(patches, cols, dw);
        }
        self.grad_weight.add_assign(&ws.bufs[WS_DW]);
        for (g, v) in self
            .grad_bias
            .data_mut()
            .iter_mut()
            .zip(ws.bufs[WS_GBIAS].data().iter())
        {
            *g += *v;
        }
        // dcols = grad_patches @ W : [b*ho*wo, c*k*k]
        {
            let (patches, dcols) = ws.buf_pair(WS_PATCHES, WS_DCOLS);
            matmul_into(patches, &self.weight, dcols);
        }
        self.col2im_into(&ws.bufs[WS_DCOLS], b, c, h, w, grad_input);
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["weight".into(), "bias".into()]
    }
}

/// Global average pooling: `[batch, ch, h, w] -> [batch, ch]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    fallback: LayerWs,
}

impl GlobalAvgPool {
    /// New pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "GlobalAvgPool expects [batch, ch, h, w]");
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        ws.set_dims(dims);
        let data = input.data();
        let denom = (h * w) as f32;
        out.resize_to(&[b, c]);
        let od = out.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                od[bi * c + ci] = data[base..base + h * w].iter().sum::<f32>() / denom;
            }
        }
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "GlobalAvgPool backward called before forward");
        let (b, c, h, w) = (ws.dims[0], ws.dims[1], ws.dims[2], ws.dims[3]);
        let god = grad_output.data();
        let denom = (h * w) as f32;
        grad_input.resize_to(&[b, c, h, w]);
        let od = grad_input.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let g = god[bi * c + ci] / denom;
                let base = (bi * c + ci) * h * w;
                od[base..base + h * w].iter_mut().for_each(|x| *x = g);
            }
        }
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

/// Reshape `[batch, ch, h, w]` activations into `[batch, ch*h*w]` (no parameters).
#[derive(Default)]
pub struct Flatten {
    fallback: LayerWs,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        let dims = input.shape().dims();
        assert!(dims.len() >= 2, "Flatten expects a batched tensor");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        ws.set_dims(dims);
        out.resize_to(&[batch, rest]);
        out.data_mut().copy_from_slice(input.data());
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "Flatten backward called before forward");
        grad_input.resize_to(&ws.dims);
        grad_input.data_mut().copy_from_slice(grad_output.data());
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Reshape flat `[batch, channels*h*w]` activations into `[batch, channels, h, w]`
/// — the inverse of [`Flatten`], used to feed image-shaped convolutions from a
/// flat-feature dataset.
pub struct Unflatten {
    channels: usize,
    height: usize,
    width: usize,
    fallback: LayerWs,
}

impl Unflatten {
    /// Create an unflatten layer producing `[batch, channels, height, width]`.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(channels * height * width > 0, "dimensions must be positive");
        Self {
            channels,
            height,
            width,
            fallback: LayerWs::new(),
        }
    }
}

impl Layer for Unflatten {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, _ws: &mut LayerWs) {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 2, "Unflatten expects [batch, features]");
        assert_eq!(
            dims[1],
            self.channels * self.height * self.width,
            "feature count does not match target shape"
        );
        out.resize_to(&[dims[0], self.channels, self.height, self.width]);
        out.data_mut().copy_from_slice(input.data());
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, _ws: &mut LayerWs) {
        let dims = grad_output.shape().dims();
        grad_input.resize_to(&[dims[0], self.channels * self.height * self.width]);
        grad_input.data_mut().copy_from_slice(grad_output.data());
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Unflatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::rng::Xoshiro256;

    #[test]
    fn unflatten_roundtrip() {
        let mut u = Unflatten::new(2, 4, 4);
        let x = Tensor::zeros(Shape::matrix(3, 32));
        let y = u.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 2, 4, 4]);
        let dx = u.backward(&y);
        assert_eq!(dx.shape().dims(), &[3, 32]);
    }

    #[test]
    #[should_panic]
    fn unflatten_rejects_wrong_feature_count() {
        let mut u = Unflatten::new(3, 4, 4);
        u.forward(&Tensor::zeros(Shape::matrix(1, 32)));
    }

    #[test]
    fn conv_output_shape_with_padding() {
        let mut rng = Xoshiro256::new(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, &mut rng);
        let x = Tensor::zeros(Shape::new(&[2, 3, 8, 8]));
        let y = conv.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_output_shape_no_padding() {
        let mut rng = Xoshiro256::new(1);
        let mut conv = Conv2d::new(1, 4, 3, 0, &mut rng);
        let x = Tensor::zeros(Shape::new(&[1, 1, 5, 5]));
        let y = conv.forward(&x);
        assert_eq!(y.shape().dims(), &[1, 4, 3, 3]);
    }

    #[test]
    fn conv_identity_kernel() {
        // A single 1x1 kernel with weight 1 reproduces the input channel.
        let mut rng = Xoshiro256::new(2);
        let mut conv = Conv2d::new(1, 1, 1, 0, &mut rng);
        conv.params_mut()[0].data_mut()[0] = 1.0;
        conv.params_mut()[1].data_mut()[0] = 0.0;
        let x = Tensor::from_vec(Shape::new(&[1, 1, 2, 2]), vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = Xoshiro256::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::rand_normal(Shape::new(&[1, 2, 4, 4]), 0.0, 1.0, &mut rng);
        let y = conv.forward(&x);
        let ones = Tensor::full(y.shape().clone(), 1.0);
        conv.zero_grad();
        conv.forward(&x);
        conv.backward(&ones);
        let analytic = conv.grads()[0].clone();
        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17] {
            let orig = conv.params()[0].data()[idx];
            conv.params_mut()[0].data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x).sum();
            conv.params_mut()[0].data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x).sum();
            conv.params_mut()[0].data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic.data()[idx] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "conv grad mismatch at {idx}: {} vs {numeric}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn conv_input_gradient_shape() {
        let mut rng = Xoshiro256::new(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::rand_normal(Shape::new(&[2, 2, 6, 6]), 0.0, 1.0, &mut rng);
        let y = conv.forward(&x);
        let dx = conv.backward(&Tensor::full(y.shape().clone(), 1.0));
        assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    #[test]
    fn global_avg_pool_forward_backward() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            Shape::new(&[1, 2, 2, 2]),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let dx = pool.backward(&Tensor::from_slice(&[4.0, 8.0]));
        assert_eq!(dx.shape().dims(), &[1, 2, 2, 2]);
        assert!(dx.data()[..4].iter().all(|&v| v == 1.0));
        assert!(dx.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(Shape::new(&[3, 2, 4, 4]));
        let y = fl.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 32]);
        let dx = fl.backward(&y);
        assert_eq!(dx.shape().dims(), &[3, 2, 4, 4]);
    }

    #[test]
    fn oversized_kernel_reports_shape_error() {
        // Regression: `h + 2p + 1 - k` used to wrap in usize when the kernel
        // exceeded the padded input, requesting an absurd output allocation.
        let mut rng = Xoshiro256::new(5);
        let conv = Conv2d::new(1, 1, 5, 1, &mut rng);
        // Padded input is 4x4 (2 + 2*1), kernel 5 does not fit.
        let err = conv.output_hw(2, 2).unwrap_err();
        assert_eq!(
            err,
            ConvShapeError {
                kernel: 5,
                padded_h: 4,
                padded_w: 4
            }
        );
        assert!(err.to_string().contains("5x5"));
        // The largest input the kernel fits yields a 1x1 output.
        assert_eq!(conv.output_hw(3, 3), Ok((1, 1)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_panics_in_forward() {
        let mut rng = Xoshiro256::new(6);
        let mut conv = Conv2d::new(1, 1, 7, 0, &mut rng);
        conv.forward(&Tensor::zeros(Shape::new(&[1, 1, 4, 4])));
    }
}
