//! 2-D convolution and pooling layers (im2col based).
//!
//! These layers exist so that the image-shaped synthetic datasets can be
//! trained with a genuinely convolutional model (the paper's backbone is
//! ResNet-18); the default experiment configuration uses the MLP for speed,
//! and [`crate::model::small_cnn`] wires these layers into a compact CNN.

use crate::layer::Layer;
use fl_tensor::matmul::{matmul_a_bt, matmul_at_b};
use fl_tensor::rng::Rng;
use fl_tensor::{Shape, Tensor};

/// 2-D convolution with square kernels, stride 1 and symmetric zero padding.
///
/// Input `[batch, in_ch, h, w]`, output `[batch, out_ch, h_out, w_out]`.
pub struct Conv2d {
    weight: Tensor, // [out_ch, in_ch * k * k]
    bias: Tensor,   // [out_ch]
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    padding: usize,
    cached_cols: Option<Tensor>, // [batch * h_out * w_out, in_ch * k * k]
    cached_input_shape: Option<(usize, usize, usize, usize)>,
}

impl Conv2d {
    /// Create a convolution layer with Kaiming-initialised weights.
    pub fn new<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        Self {
            weight: Tensor::kaiming(Shape::matrix(out_ch, fan_in), fan_in, rng),
            bias: Tensor::zeros(Shape::vector(out_ch)),
            grad_weight: Tensor::zeros(Shape::matrix(out_ch, fan_in)),
            grad_bias: Tensor::zeros(Shape::vector(out_ch)),
            in_ch,
            out_ch,
            kernel,
            padding,
            cached_cols: None,
            cached_input_shape: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.padding + 1 - self.kernel,
            w + 2 * self.padding + 1 - self.kernel,
        )
    }

    /// im2col: unfold the padded input into a `[batch*h_out*w_out, in_ch*k*k]` matrix.
    fn im2col(&self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims();
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (ho, wo) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.padding as isize;
        let cols_per_patch = c * k * k;
        let mut cols = vec![0.0f32; b * ho * wo * cols_per_patch];
        let data = input.data();
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch_base = ((bi * ho + oy) * wo + ox) * cols_per_patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                let col_idx = patch_base + (ci * k + ky) * k + kx;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    cols[col_idx] =
                                        data[((bi * c + ci) * h + iy as usize) * w + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(Shape::matrix(b * ho * wo, cols_per_patch), cols)
    }

    /// col2im: fold gradients w.r.t. the unfolded matrix back into input shape.
    fn col2im(&self, cols: &Tensor, b: usize, c: usize, h: usize, w: usize) -> Tensor {
        let (ho, wo) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.padding as isize;
        let cols_per_patch = c * k * k;
        let mut out = vec![0.0f32; b * c * h * w];
        let cd = cols.data();
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch_base = ((bi * ho + oy) * wo + ox) * cols_per_patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    out[((bi * c + ci) * h + iy as usize) * w + ix as usize] +=
                                        cd[patch_base + (ci * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(Shape::new(&[b, c, h, w]), out)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d: channel mismatch");
        let (b, h, w) = (dims[0], dims[2], dims[3]);
        let (ho, wo) = self.out_hw(h, w);
        // cols: [b*ho*wo, c*k*k]; out_patches = cols @ W^T: [b*ho*wo, out_ch]
        let cols = self.im2col(input);
        let out_patches = matmul_a_bt(&cols, &self.weight);
        self.cached_cols = Some(cols);
        self.cached_input_shape = Some((b, self.in_ch, h, w));
        // Rearrange to [b, out_ch, ho, wo] and add bias.
        let pd = out_patches.data();
        let bias = self.bias.data();
        let mut out = vec![0.0f32; b * self.out_ch * ho * wo];
        for bi in 0..b {
            for oy in 0..ho {
                for ox in 0..wo {
                    let patch = (bi * ho + oy) * wo + ox;
                    for oc in 0..self.out_ch {
                        out[((bi * self.out_ch + oc) * ho + oy) * wo + ox] =
                            pd[patch * self.out_ch + oc] + bias[oc];
                    }
                }
            }
        }
        Tensor::from_vec(Shape::new(&[b, self.out_ch, ho, wo]), out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("Conv2d backward called before forward");
        let (b, c, h, w) = self
            .cached_input_shape
            .expect("Conv2d backward called before forward");
        let (ho, wo) = self.out_hw(h, w);
        let god = grad_output.data();
        // Rearrange grad_output [b, out_ch, ho, wo] -> [b*ho*wo, out_ch]
        let mut gp = vec![0.0f32; b * ho * wo * self.out_ch];
        let mut gbias = vec![0.0f32; self.out_ch];
        for bi in 0..b {
            for oc in 0..self.out_ch {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let v = god[((bi * self.out_ch + oc) * ho + oy) * wo + ox];
                        gp[((bi * ho + oy) * wo + ox) * self.out_ch + oc] = v;
                        gbias[oc] += v;
                    }
                }
            }
        }
        let grad_patches = Tensor::from_vec(Shape::matrix(b * ho * wo, self.out_ch), gp);
        // dW = grad_patches^T @ cols : [out_ch, c*k*k]
        let dw = matmul_at_b(&grad_patches, cols);
        self.grad_weight.add_assign(&dw);
        for (g, v) in self.grad_bias.data_mut().iter_mut().zip(gbias.iter()) {
            *g += *v;
        }
        // dcols = grad_patches @ W : [b*ho*wo, c*k*k]
        let dcols = fl_tensor::matmul::matmul(&grad_patches, &self.weight);
        self.col2im(&dcols, b, c, h, w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["weight".into(), "bias".into()]
    }
}

/// Global average pooling: `[batch, ch, h, w] -> [batch, ch]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<(usize, usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// New pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "GlobalAvgPool expects [batch, ch, h, w]");
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        self.cached_shape = Some((b, c, h, w));
        let data = input.data();
        let denom = (h * w) as f32;
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                out[bi * c + ci] = data[base..base + h * w].iter().sum::<f32>() / denom;
            }
        }
        Tensor::from_vec(Shape::matrix(b, c), out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (b, c, h, w) = self
            .cached_shape
            .expect("GlobalAvgPool backward called before forward");
        let god = grad_output.data();
        let denom = (h * w) as f32;
        let mut out = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let g = god[bi * c + ci] / denom;
                let base = (bi * c + ci) * h * w;
                out[base..base + h * w].iter_mut().for_each(|x| *x = g);
            }
        }
        Tensor::from_vec(Shape::new(&[b, c, h, w]), out)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

/// Reshape `[batch, ch, h, w]` activations into `[batch, ch*h*w]` (no parameters).
#[derive(Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims().to_vec();
        assert!(dims.len() >= 2, "Flatten expects a batched tensor");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.cached_shape = Some(dims);
        let mut out = input.clone();
        out.reshape(Shape::matrix(batch, rest));
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_shape
            .as_ref()
            .expect("Flatten backward called before forward");
        let mut out = grad_output.clone();
        out.reshape(Shape::new(dims));
        out
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Reshape flat `[batch, channels*h*w]` activations into `[batch, channels, h, w]`
/// — the inverse of [`Flatten`], used to feed image-shaped convolutions from a
/// flat-feature dataset.
pub struct Unflatten {
    channels: usize,
    height: usize,
    width: usize,
}

impl Unflatten {
    /// Create an unflatten layer producing `[batch, channels, height, width]`.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(channels * height * width > 0, "dimensions must be positive");
        Self {
            channels,
            height,
            width,
        }
    }
}

impl Layer for Unflatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 2, "Unflatten expects [batch, features]");
        assert_eq!(
            dims[1],
            self.channels * self.height * self.width,
            "feature count does not match target shape"
        );
        let mut out = input.clone();
        out.reshape(Shape::new(&[
            dims[0],
            self.channels,
            self.height,
            self.width,
        ]));
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = grad_output.shape().dims();
        let mut out = grad_output.clone();
        out.reshape(Shape::matrix(
            dims[0],
            self.channels * self.height * self.width,
        ));
        out
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![]
    }

    fn zero_grad(&mut self) {}

    fn name(&self) -> &'static str {
        "Unflatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::rng::Xoshiro256;

    #[test]
    fn unflatten_roundtrip() {
        let mut u = Unflatten::new(2, 4, 4);
        let x = Tensor::zeros(Shape::matrix(3, 32));
        let y = u.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 2, 4, 4]);
        let dx = u.backward(&y);
        assert_eq!(dx.shape().dims(), &[3, 32]);
    }

    #[test]
    #[should_panic]
    fn unflatten_rejects_wrong_feature_count() {
        let mut u = Unflatten::new(3, 4, 4);
        u.forward(&Tensor::zeros(Shape::matrix(1, 32)));
    }

    #[test]
    fn conv_output_shape_with_padding() {
        let mut rng = Xoshiro256::new(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, &mut rng);
        let x = Tensor::zeros(Shape::new(&[2, 3, 8, 8]));
        let y = conv.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_output_shape_no_padding() {
        let mut rng = Xoshiro256::new(1);
        let mut conv = Conv2d::new(1, 4, 3, 0, &mut rng);
        let x = Tensor::zeros(Shape::new(&[1, 1, 5, 5]));
        let y = conv.forward(&x);
        assert_eq!(y.shape().dims(), &[1, 4, 3, 3]);
    }

    #[test]
    fn conv_identity_kernel() {
        // A single 1x1 kernel with weight 1 reproduces the input channel.
        let mut rng = Xoshiro256::new(2);
        let mut conv = Conv2d::new(1, 1, 1, 0, &mut rng);
        conv.params_mut()[0].data_mut()[0] = 1.0;
        conv.params_mut()[1].data_mut()[0] = 0.0;
        let x = Tensor::from_vec(Shape::new(&[1, 1, 2, 2]), vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = Xoshiro256::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::rand_normal(Shape::new(&[1, 2, 4, 4]), 0.0, 1.0, &mut rng);
        let y = conv.forward(&x);
        let ones = Tensor::full(y.shape().clone(), 1.0);
        conv.zero_grad();
        conv.forward(&x);
        conv.backward(&ones);
        let analytic = conv.grads()[0].clone();
        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17] {
            let orig = conv.params()[0].data()[idx];
            conv.params_mut()[0].data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x).sum();
            conv.params_mut()[0].data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x).sum();
            conv.params_mut()[0].data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic.data()[idx] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "conv grad mismatch at {idx}: {} vs {numeric}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn conv_input_gradient_shape() {
        let mut rng = Xoshiro256::new(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::rand_normal(Shape::new(&[2, 2, 6, 6]), 0.0, 1.0, &mut rng);
        let y = conv.forward(&x);
        let dx = conv.backward(&Tensor::full(y.shape().clone(), 1.0));
        assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    #[test]
    fn global_avg_pool_forward_backward() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            Shape::new(&[1, 2, 2, 2]),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let dx = pool.backward(&Tensor::from_slice(&[4.0, 8.0]));
        assert_eq!(dx.shape().dims(), &[1, 2, 2, 2]);
        assert!(dx.data()[..4].iter().all(|&v| v == 1.0));
        assert!(dx.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(Shape::new(&[3, 2, 4, 4]));
        let y = fl.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 32]);
        let dx = fl.backward(&y);
        assert_eq!(dx.shape().dims(), &[3, 2, 4, 4]);
    }
}
