//! Softmax cross-entropy loss for classification.

use fl_tensor::Tensor;

/// Combined softmax + cross-entropy over integer class labels.
///
/// `forward` returns the mean loss over the batch; `backward` returns
/// `dL/d(logits)` already divided by the batch size, so it can be fed straight
/// into the last layer's `backward`.
#[derive(Default)]
pub struct SoftmaxCrossEntropy {
    probs: Tensor,
    labels: Vec<usize>,
    ready: bool,
}

impl SoftmaxCrossEntropy {
    /// New loss instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Numerically stable softmax over the rows of a `[batch, classes]`
    /// tensor, written into the reusable `out` tensor.
    pub fn softmax_into(logits: &Tensor, out: &mut Tensor) {
        let dims = logits.shape().dims();
        assert_eq!(dims.len(), 2, "softmax expects [batch, classes]");
        let (b, c) = (dims[0], dims[1]);
        let ld = logits.data();
        out.resize_to(&[b, c]);
        let od = out.data_mut();
        for i in 0..b {
            let row = &ld[i * c..(i + 1) * c];
            let maxv = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &x) in row.iter().enumerate() {
                let e = (x - maxv).exp();
                od[i * c + j] = e;
                denom += e;
            }
            for j in 0..c {
                od[i * c + j] /= denom;
            }
        }
    }

    /// Numerically stable softmax over the rows of a `[batch, classes]` tensor.
    pub fn softmax(logits: &Tensor) -> Tensor {
        let mut out = Tensor::empty();
        Self::softmax_into(logits, &mut out);
        out
    }

    /// Mean cross-entropy loss; caches what `backward` needs in reusable
    /// internal buffers (steady-state calls perform no heap allocation).
    pub fn forward(&mut self, logits: &Tensor, labels: &[usize]) -> f32 {
        let dims = logits.shape().dims();
        let (b, c) = (dims[0], dims[1]);
        assert_eq!(labels.len(), b, "label count must equal batch size");
        assert!(
            labels.iter().all(|&y| y < c),
            "label out of range for {c} classes"
        );
        Self::softmax_into(logits, &mut self.probs);
        let pd = self.probs.data();
        let mut loss = 0.0f32;
        for (i, &y) in labels.iter().enumerate() {
            loss -= pd[i * c + y].max(1e-12).ln();
        }
        self.labels.clear();
        self.labels.extend_from_slice(labels);
        self.ready = true;
        loss / b as f32
    }

    /// Gradient of the mean loss w.r.t. the logits, written into the reusable
    /// `out` tensor.
    pub fn backward_in(&self, out: &mut Tensor) {
        assert!(self.ready, "loss backward called before forward");
        let dims = self.probs.shape().dims();
        let (b, c) = (dims[0], dims[1]);
        out.copy_from(&self.probs);
        let gd = out.data_mut();
        for (i, &y) in self.labels.iter().enumerate() {
            gd[i * c + y] -= 1.0;
        }
        let scale = 1.0 / b as f32;
        gd.iter_mut().for_each(|x| *x *= scale);
    }

    /// Gradient of the mean loss w.r.t. the logits.
    pub fn backward(&self) -> Tensor {
        let mut grad = Tensor::empty();
        self.backward_in(&mut grad);
        grad
    }

    /// Classification accuracy of logits against labels.
    pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
        let dims = logits.shape().dims();
        let (b, c) = (dims[0], dims[1]);
        assert_eq!(labels.len(), b);
        if b == 0 {
            return 0.0;
        }
        let ld = logits.data();
        let mut correct = 0usize;
        for (i, &y) in labels.iter().enumerate() {
            let row = &ld[i * c..(i + 1) * c];
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (j, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = j;
                }
            }
            if best == y {
                correct += 1;
            }
        }
        correct as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = SoftmaxCrossEntropy::softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(Shape::matrix(1, 3), vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(Shape::matrix(1, 3), vec![101.0, 102.0, 103.0]);
        let pa = SoftmaxCrossEntropy::softmax(&a);
        let pb = SoftmaxCrossEntropy::softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(Shape::matrix(4, 10));
        let labels = [0usize, 3, 7, 9];
        let l = loss.forward(&logits, &labels);
        assert!((l - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let mut loss = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::zeros(Shape::matrix(2, 3));
        logits.set(&[0, 1], 100.0);
        logits.set(&[1, 2], 100.0);
        let l = loss.forward(&logits, &[1, 2]);
        assert!(l < 1e-4);
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(Shape::matrix(2, 3), vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        loss.forward(&logits, &labels);
        let analytic = loss.backward();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let mut tmp = SoftmaxCrossEntropy::new();
            let fp = tmp.forward(&lp, &labels);
            let fm = tmp.forward(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic.data()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: analytic {} vs numeric {numeric}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(
            Shape::matrix(2, 4),
            vec![1.0, 2.0, 0.5, -1.0, 0.0, 0.0, 3.0, 1.0],
        );
        loss.forward(&logits, &[0, 2]);
        let g = loss.backward();
        for i in 0..2 {
            let s: f32 = g.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(Shape::matrix(3, 2), vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        let acc = SoftmaxCrossEntropy::accuracy(&logits, &[0, 1, 1]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(Shape::matrix(1, 3));
        loss.forward(&logits, &[3]);
    }
}
