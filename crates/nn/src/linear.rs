//! Fully-connected (dense) layer.

use crate::layer::Layer;
use crate::workspace::LayerWs;
use fl_tensor::matmul::{
    add_bias_rows, matmul_a_bt_into, matmul_at_b_into, matmul_into, sum_rows_into,
};
use fl_tensor::rng::Rng;
use fl_tensor::{Shape, Tensor};

// Workspace scratch channels.
const WS_INPUT: usize = 0; // cached forward input
const WS_DW: usize = 1; // weight-gradient scratch
const WS_DB: usize = 2; // bias-gradient scratch
const WS_WT: usize = 3; // W^T scratch for dX

/// `y = x @ W + b` with `W: [in, out]`, `b: [out]`.
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_features: usize,
    out_features: usize,
    fallback: LayerWs,
}

impl Linear {
    /// New layer with Kaiming-initialised weights and zero bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let weight = Tensor::kaiming(Shape::matrix(in_features, out_features), in_features, rng);
        let bias = Tensor::zeros(Shape::vector(out_features));
        Self {
            grad_weight: Tensor::zeros(Shape::matrix(in_features, out_features)),
            grad_bias: Tensor::zeros(Shape::vector(out_features)),
            weight,
            bias,
            in_features,
            out_features,
            fallback: LayerWs::new(),
        }
    }

    /// New layer with all-zero weights and bias — for replicas whose
    /// parameters are immediately overwritten (e.g. a federated client
    /// receiving the global model), where a random init would only burn
    /// normal draws.
    pub fn zeroed(in_features: usize, out_features: usize) -> Self {
        Self {
            weight: Tensor::zeros(Shape::matrix(in_features, out_features)),
            bias: Tensor::zeros(Shape::vector(out_features)),
            grad_weight: Tensor::zeros(Shape::matrix(in_features, out_features)),
            grad_bias: Tensor::zeros(Shape::vector(out_features)),
            in_features,
            out_features,
            fallback: LayerWs::new(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward_in(&self, input: &Tensor, out: &mut Tensor, ws: &mut LayerWs) {
        assert_eq!(
            input.shape().dims()[1],
            self.in_features,
            "Linear forward: expected {} input features",
            self.in_features
        );
        matmul_into(input, &self.weight, out);
        add_bias_rows(out, &self.bias);
        ws.ensure_bufs(WS_WT + 1);
        ws.bufs[WS_INPUT].copy_from(input);
        ws.ready = true;
    }

    fn backward_in(&mut self, grad_output: &Tensor, grad_input: &mut Tensor, ws: &mut LayerWs) {
        assert!(ws.ready, "Linear backward called before forward");
        // dW = X^T @ dY ; db = column sums of dY ; dX = dY @ W^T
        {
            let (input, dw) = ws.buf_pair(WS_INPUT, WS_DW);
            matmul_at_b_into(input, grad_output, dw);
            self.grad_weight.add_assign(dw);
        }
        let db = &mut ws.bufs[WS_DB];
        sum_rows_into(grad_output, db);
        self.grad_bias.add_assign(db);
        // grad_output: [batch, out], weight: [in, out] => dX = dY @ W^T : [batch, in]
        matmul_a_bt_into(grad_output, &self.weight, &mut ws.bufs[WS_WT], grad_input);
    }

    fn fallback_ws(&mut self) -> &mut LayerWs {
        &mut self.fallback
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["weight".into(), "bias".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::rng::Xoshiro256;

    fn numerical_grad_check(in_f: usize, out_f: usize) {
        let mut rng = Xoshiro256::new(42);
        let mut layer = Linear::new(in_f, out_f, &mut rng);
        let x = Tensor::rand_normal(Shape::matrix(3, in_f), 0.0, 1.0, &mut rng);
        // Loss = sum(forward(x)); dL/dy = ones.
        let y = layer.forward(&x);
        let ones = Tensor::full(y.shape().clone(), 1.0);
        layer.zero_grad();
        layer.forward(&x);
        layer.backward(&ones);
        let analytic = layer.grads()[0].clone();

        let eps = 1e-3f32;
        // Check a handful of weight coordinates numerically.
        for &idx in &[0usize, in_f * out_f / 2, in_f * out_f - 1] {
            let orig = layer.params()[0].data()[idx];
            layer.params_mut()[0].data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x).sum();
            layer.params_mut()[0].data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x).sum();
            layer.params_mut()[0].data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad mismatch at {idx}: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = Xoshiro256::new(1);
        let mut l = Linear::new(4, 7, &mut rng);
        let x = Tensor::zeros(Shape::matrix(5, 4));
        let y = l.forward(&x);
        assert_eq!(y.shape().dims(), &[5, 7]);
        // Zero input + zero bias => zero output.
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn known_small_case() {
        let mut rng = Xoshiro256::new(1);
        let mut l = Linear::new(2, 1, &mut rng);
        l.params_mut()[0].data_mut().copy_from_slice(&[2.0, 3.0]); // W
        l.params_mut()[1].data_mut().copy_from_slice(&[0.5]); // b
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[5.5]);
    }

    #[test]
    fn gradient_check_small() {
        numerical_grad_check(3, 2);
    }

    #[test]
    fn gradient_check_larger() {
        numerical_grad_check(10, 6);
    }

    #[test]
    fn bias_gradient_is_batch_sum() {
        let mut rng = Xoshiro256::new(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::rand_normal(Shape::matrix(4, 3), 0.0, 1.0, &mut rng);
        l.forward(&x);
        let g = Tensor::full(Shape::matrix(4, 2), 1.0);
        l.backward(&g);
        // db = sum over batch of dY = 4.
        assert!(l.grads()[1].data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = Xoshiro256::new(3);
        let mut l = Linear::new(3, 3, &mut rng);
        let x = Tensor::rand_normal(Shape::matrix(2, 3), 0.0, 1.0, &mut rng);
        l.forward(&x);
        l.backward(&Tensor::full(Shape::matrix(2, 3), 1.0));
        assert!(l.grads()[0].norm_l2() > 0.0);
        l.zero_grad();
        assert_eq!(l.grads()[0].norm_l2(), 0.0);
        assert_eq!(l.grads()[1].norm_l2(), 0.0);
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = Xoshiro256::new(4);
        let l = Linear::new(8, 5, &mut rng);
        assert_eq!(l.num_params(), 8 * 5 + 5);
    }
}
