//! Reusable scratch arenas for the allocation-free training hot path.
//!
//! A [`Workspace`] owns every intermediate buffer a forward/backward pass
//! needs — the activation and gradient ping-pong buffers threaded between
//! layers by [`crate::model::Sequential`], plus one [`LayerWs`] slot per layer
//! holding that layer's cross-pass state (cached inputs, im2col columns, ReLU
//! masks, …). Buffers are grown on first use and reused verbatim afterwards,
//! so a steady-state training batch performs no heap allocation at all.
//!
//! Ownership: the *caller* of the `_in` training API owns the workspace and
//! threads it through `forward_in` / `backward_in`; layers never allocate
//! cross-pass state of their own on that path. The allocating `forward` /
//! `backward` wrappers keep a private fallback workspace per layer/model so
//! existing callers observe identical behaviour.

use fl_tensor::Tensor;

/// Per-layer scratch slot: reusable tensors, a boolean mask (ReLU), and a
/// cached shape (reshape/pooling layers), all owned by the enclosing
/// [`Workspace`] rather than the layer.
#[derive(Default)]
pub struct LayerWs {
    /// Generic tensor scratch, indexed by a layer-private channel number.
    pub bufs: Vec<Tensor>,
    /// Boolean element mask (ReLU keeps its activation mask here).
    pub mask: Vec<bool>,
    /// Cached input dimensions for layers whose backward needs them.
    pub dims: Vec<usize>,
    /// Set by `forward_in` once this slot holds a valid cached state;
    /// `backward_in` asserts it for a clear backward-before-forward panic.
    pub ready: bool,
}

impl LayerWs {
    /// Fresh, empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the scratch-tensor vector to at least `n` (empty) tensors.
    pub fn ensure_bufs(&mut self, n: usize) {
        if self.bufs.len() < n {
            self.bufs.resize_with(n, Tensor::empty);
        }
    }

    /// Record the input dimensions for the backward pass (reuses the buffer).
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Two distinct scratch tensors borrowed simultaneously (split borrow).
    pub fn buf_pair(&mut self, i: usize, j: usize) -> (&mut Tensor, &mut Tensor) {
        assert_ne!(i, j, "buf_pair needs two distinct channels");
        self.ensure_bufs(i.max(j) + 1);
        if i < j {
            let (left, right) = self.bufs.split_at_mut(j);
            (&mut left[i], &mut right[0])
        } else {
            let (left, right) = self.bufs.split_at_mut(i);
            (&mut right[0], &mut left[j])
        }
    }

    /// Three distinct scratch tensors borrowed simultaneously (split borrow).
    pub fn buf_triple(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
    ) -> (&mut Tensor, &mut Tensor, &mut Tensor) {
        assert!(
            i != j && j != k && i != k,
            "buf_triple needs three distinct channels"
        );
        self.ensure_bufs(i.max(j).max(k) + 1);
        let ptr = self.bufs.as_mut_ptr();
        // SAFETY: the three indices are pairwise distinct and in bounds, so
        // the raw-pointer borrows never alias.
        unsafe { (&mut *ptr.add(i), &mut *ptr.add(j), &mut *ptr.add(k)) }
    }
}

/// Scratch arena for one model: activation/gradient ping-pong buffers plus a
/// [`LayerWs`] per layer slot. Create one per training context (it is cheap
/// and empty until first use) and reuse it for every batch.
#[derive(Default)]
pub struct Workspace {
    pub(crate) x_a: Tensor,
    pub(crate) x_b: Tensor,
    pub(crate) g_a: Tensor,
    pub(crate) g_b: Tensor,
    pub(crate) layers: Vec<LayerWs>,
}

impl Workspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-layer slot vector to at least `n` slots.
    pub(crate) fn ensure_layers(&mut self, n: usize) {
        if self.layers.len() < n {
            self.layers.resize_with(n, LayerWs::default);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_pair_returns_distinct_buffers() {
        let mut ws = LayerWs::new();
        {
            let (a, b) = ws.buf_pair(0, 2);
            a.resize_to(&[2]);
            a.fill(1.0);
            b.resize_to(&[3]);
            b.fill(2.0);
        }
        assert_eq!(ws.bufs[0].data(), &[1.0, 1.0]);
        assert_eq!(ws.bufs[2].data(), &[2.0, 2.0, 2.0]);
        let (hi, lo) = ws.buf_pair(2, 0);
        assert_eq!(hi.data(), &[2.0, 2.0, 2.0]);
        assert_eq!(lo.data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "distinct channels")]
    fn buf_pair_rejects_aliasing() {
        LayerWs::new().buf_pair(1, 1);
    }
}
