//! Sequential model container and the model presets used by the experiments.

use crate::activation::Relu;
use crate::conv::{Conv2d, Flatten, GlobalAvgPool, Unflatten};
use crate::layer::Layer;
use crate::linear::Linear;
use crate::workspace::Workspace;
use fl_tensor::rng::Rng;
use fl_tensor::Tensor;

/// A plain sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    ws: Workspace,
}

impl Sequential {
    /// Empty model.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Allocation-free forward pass: activations ping-pong between the
    /// workspace's two buffers, per-layer backward state lands in the
    /// workspace's layer slots, and the returned reference points into the
    /// workspace. Takes `&self` — a shared model can run concurrent forward
    /// passes over per-thread workspaces.
    pub fn forward_in<'w>(&self, input: &Tensor, ws: &'w mut Workspace) -> &'w Tensor {
        ws.ensure_layers(self.layers.len());
        if self.layers.is_empty() {
            ws.x_a.copy_from(input);
            return &ws.x_a;
        }
        self.layers[0].forward_in(input, &mut ws.x_a, &mut ws.layers[0]);
        for i in 1..self.layers.len() {
            self.layers[i].forward_in(&ws.x_a, &mut ws.x_b, &mut ws.layers[i]);
            std::mem::swap(&mut ws.x_a, &mut ws.x_b);
        }
        &ws.x_a
    }

    /// Allocation-free backward pass through the same workspace the forward
    /// pass used; returns `dL/d(input)` as a reference into the workspace.
    pub fn backward_in<'w>(&mut self, grad_output: &Tensor, ws: &'w mut Workspace) -> &'w Tensor {
        ws.ensure_layers(self.layers.len());
        if self.layers.is_empty() {
            ws.g_a.copy_from(grad_output);
            return &ws.g_a;
        }
        let last = self.layers.len() - 1;
        self.layers[last].backward_in(grad_output, &mut ws.g_a, &mut ws.layers[last]);
        for i in (0..last).rev() {
            self.layers[i].backward_in(&ws.g_a, &mut ws.g_b, &mut ws.layers[i]);
            std::mem::swap(&mut ws.g_a, &mut ws.g_b);
        }
        &ws.g_a
    }

    /// Forward pass through every layer (allocating wrapper over
    /// [`forward_in`](Self::forward_in) using the model's private workspace).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut ws = std::mem::take(&mut self.ws);
        let out = self.forward_in(input, &mut ws).clone();
        self.ws = ws;
        out
    }

    /// Backward pass; `grad_output` is `dL/d(model output)` (allocating
    /// wrapper over [`backward_in`](Self::backward_in)).
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut ws = std::mem::take(&mut self.ws);
        let g = self.backward_in(grad_output, &mut ws).clone();
        self.ws = ws;
        g
    }

    /// Zero every layer's gradient buffers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visit each `(param, grad)` pair in [`params`](Self::params) order with
    /// simultaneous mutable parameter / immutable gradient access (the
    /// allocation-free accessor behind the fused optimizer step).
    pub fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_and_grads(f);
        }
    }

    /// All trainable parameters, layer by layer.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All trainable parameters, mutable.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// All gradients, aligned with `params`.
    pub fn grads(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Layer names (for reports).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Iterate over the layers themselves (used by
    /// [`crate::params::ParamLayout`] to derive named parameter segments).
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|l| l.as_ref())
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

/// Multi-layer perceptron: `input -> hidden (ReLU) x N -> classes`.
///
/// This is the default experiment model; with the synthetic datasets a
/// two-hidden-layer MLP gives the same qualitative compression/overlap
/// behaviour as the paper's ResNet-18 at a small fraction of the compute.
pub fn mlp<R: Rng>(input_dim: usize, hidden: &[usize], classes: usize, rng: &mut R) -> Sequential {
    let mut model = Sequential::new();
    let mut prev = input_dim;
    for &h in hidden {
        model = model
            .push(Box::new(Linear::new(prev, h, rng)))
            .push(Box::new(Relu::new()));
        prev = h;
    }
    model.push(Box::new(Linear::new(prev, classes, rng)))
}

/// [`mlp`] with all-zero parameters — for replicas that are immediately
/// overwritten with externally supplied parameters (a federated client
/// receiving the broadcast model). Skipping the Kaiming draws makes replica
/// construction O(params) copies instead of O(params) normal samples.
pub fn mlp_zeroed(input_dim: usize, hidden: &[usize], classes: usize) -> Sequential {
    let mut model = Sequential::new();
    let mut prev = input_dim;
    for &h in hidden {
        model = model
            .push(Box::new(Linear::zeroed(prev, h)))
            .push(Box::new(Relu::new()));
        prev = h;
    }
    model.push(Box::new(Linear::zeroed(prev, classes)))
}

/// A compact CNN for `[batch, channels, size, size]` image-shaped inputs:
/// two 3x3 conv + ReLU stages, global average pooling, then a linear head.
pub fn small_cnn<R: Rng>(
    channels: usize,
    size: usize,
    conv_channels: usize,
    classes: usize,
    rng: &mut R,
) -> Sequential {
    assert!(size >= 3, "small_cnn needs inputs of at least 3x3");
    Sequential::new()
        .push(Box::new(Conv2d::new(channels, conv_channels, 3, 1, rng)))
        .push(Box::new(Relu::new()))
        .push(Box::new(Conv2d::new(
            conv_channels,
            conv_channels,
            3,
            1,
            rng,
        )))
        .push(Box::new(Relu::new()))
        .push(Box::new(GlobalAvgPool::new()))
        .push(Box::new(Linear::new(conv_channels, classes, rng)))
}

/// A compact CNN that consumes *flat* feature vectors of length
/// `channels * size * size` (as produced by [`fl_data`]'s datasets), reshapes
/// them to image form and applies [`small_cnn`]'s architecture. This is the
/// convolutional counterpart of [`mlp`] for the experiment runner.
pub fn small_cnn_flat<R: Rng>(
    channels: usize,
    size: usize,
    conv_channels: usize,
    classes: usize,
    rng: &mut R,
) -> Sequential {
    Sequential::new()
        .push(Box::new(Unflatten::new(channels, size, size)))
        .push(Box::new(Conv2d::new(channels, conv_channels, 3, 1, rng)))
        .push(Box::new(Relu::new()))
        .push(Box::new(Conv2d::new(
            conv_channels,
            conv_channels,
            3,
            1,
            rng,
        )))
        .push(Box::new(Relu::new()))
        .push(Box::new(GlobalAvgPool::new()))
        .push(Box::new(Linear::new(conv_channels, classes, rng)))
}

/// A logistic-regression model (single linear layer); the cheapest preset,
/// used by quick tests.
pub fn logistic_regression<R: Rng>(input_dim: usize, classes: usize, rng: &mut R) -> Sequential {
    Sequential::new().push(Box::new(Linear::new(input_dim, classes, rng)))
}

/// [`logistic_regression`] with all-zero parameters (see [`mlp_zeroed`]).
pub fn logistic_regression_zeroed(input_dim: usize, classes: usize) -> Sequential {
    Sequential::new().push(Box::new(Linear::zeroed(input_dim, classes)))
}

/// Unused flatten re-export kept for model builders that consume raw images
/// with dense models.
pub fn flatten_layer() -> Box<dyn Layer> {
    Box::new(Flatten::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Sgd;
    use fl_tensor::rng::Xoshiro256;
    use fl_tensor::Shape;

    #[test]
    fn mlp_shapes_and_param_count() {
        let mut rng = Xoshiro256::new(1);
        let mut m = mlp(8, &[16, 16], 4, &mut rng);
        assert_eq!(m.num_params(), 8 * 16 + 16 + 16 * 16 + 16 + 16 * 4 + 4);
        let x = Tensor::zeros(Shape::matrix(5, 8));
        let y = m.forward(&x);
        assert_eq!(y.shape().dims(), &[5, 4]);
    }

    #[test]
    fn cnn_forward_shape() {
        let mut rng = Xoshiro256::new(2);
        let mut m = small_cnn(3, 8, 6, 10, &mut rng);
        let x = Tensor::zeros(Shape::new(&[2, 3, 8, 8]));
        let y = m.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 10]);
        assert!(m.num_params() > 0);
    }

    #[test]
    fn params_and_grads_aligned() {
        let mut rng = Xoshiro256::new(3);
        let m = mlp(4, &[8], 3, &mut rng);
        let p = m.params();
        let g = m.grads();
        assert_eq!(p.len(), g.len());
        for (pi, gi) in p.iter().zip(g.iter()) {
            assert_eq!(pi.numel(), gi.numel());
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        // Two well-separated Gaussian blobs; a small MLP must fit them.
        let mut rng = Xoshiro256::new(4);
        let n = 64;
        let dim = 5;
        let mut xs = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            for _ in 0..dim {
                let centre = if class == 0 { -2.0 } else { 2.0 };
                xs.push(centre + 0.5 * (rng.next_f32() - 0.5));
            }
        }
        let x = Tensor::from_vec(Shape::matrix(n, dim), xs);
        let mut model = mlp(dim, &[16], 2, &mut rng);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let initial = loss.forward(&model.forward(&x), &labels);
        for _ in 0..30 {
            model.zero_grad();
            let logits = model.forward(&x);
            loss.forward(&logits, &labels);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model);
        }
        let fin = loss.forward(&model.forward(&x), &labels);
        assert!(
            fin < initial * 0.5,
            "training did not reduce loss: {initial} -> {fin}"
        );
        let acc = SoftmaxCrossEntropy::accuracy(&model.forward(&x), &labels);
        assert!(acc > 0.9, "accuracy after training was {acc}");
    }

    #[test]
    fn flat_cnn_accepts_flat_features() {
        let mut rng = Xoshiro256::new(6);
        let mut m = small_cnn_flat(2, 8, 4, 10, &mut rng);
        let x = Tensor::zeros(Shape::matrix(3, 2 * 8 * 8));
        let y = m.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 10]);
        // Backward runs end to end (shapes are consistent through Unflatten).
        m.zero_grad();
        m.forward(&x);
        let dx = m.backward(&Tensor::full(Shape::matrix(3, 10), 1.0));
        assert_eq!(dx.shape().dims(), &[3, 128]);
    }

    #[test]
    fn logistic_regression_single_layer() {
        let mut rng = Xoshiro256::new(5);
        let m = logistic_regression(10, 3, &mut rng);
        assert_eq!(m.len(), 1);
        assert_eq!(m.num_params(), 33);
    }

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new();
        assert!(m.is_empty());
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(m.forward(&x).data(), x.data());
    }
}
