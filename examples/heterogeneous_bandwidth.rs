//! Heterogeneous-bandwidth walkthrough: how BCRS turns straggler wait time
//! into extra transmitted information.
//!
//! This example does not train a model; it exercises the network simulator
//! and the BCRS scheduler directly (the mechanics behind the paper's Fig. 1
//! and Fig. 2), printing a per-client table of bandwidth, latency, the
//! scheduled compression ratio and the resulting upload times.
//!
//! Run with `cargo run --release --example heterogeneous_bandwidth`.

use bwfl::prelude::*;

fn main() {
    // A 25 000-parameter model (~100 KB) and ten clients drawn from the
    // paper's link distribution: bandwidth ~ N(1 Mbit/s, 0.2), latency ~
    // U(50 ms, 200 ms].
    let model_bytes = 25_418.0 * 4.0;
    let links = LinkGenerator::paper_default().generate(10, 7);
    let comm = CommModel::paper_default();
    let base_ratio = 0.05;

    println!(
        "model size: {:.0} bytes, base compression ratio CR* = {base_ratio}",
        model_bytes
    );
    println!();

    // Uniform compression: every client uses CR*, the round ends when the
    // slowest client finishes.
    let uniform: Vec<f64> = links
        .iter()
        .map(|l| comm.sparse_uplink_time(l, model_bytes, base_ratio))
        .collect();
    let uniform_straggler = uniform.iter().cloned().fold(0.0, f64::max);

    // BCRS: the slowest client's time becomes the budget for everyone.
    let schedule = BcrsScheduler::new(comm).schedule(&links, model_bytes, base_ratio);

    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "client", "bw (Mbit/s)", "lat (ms)", "uniform s", "BCRS ratio", "BCRS s", "extra info"
    );
    for (i, link) in links.iter().enumerate() {
        println!(
            "{:>6} {:>12.3} {:>12.1} {:>10.3} {:>12.4} {:>12.3} {:>9.1}x",
            i,
            link.bandwidth_mbps(),
            link.latency_ms(),
            uniform[i],
            schedule.ratios[i],
            schedule.scheduled_times[i],
            schedule.ratios[i] / base_ratio,
        );
    }

    println!();
    println!("uniform-compression round time (straggler): {uniform_straggler:.3} s");
    println!(
        "BCRS round time (makespan):                 {:.3} s",
        schedule.makespan()
    );
    println!(
        "BCRS benchmark T_bench:                     {:.3} s",
        schedule.t_bench
    );
    println!(
        "mean compression ratio: uniform {:.4} vs BCRS {:.4} ({:.1}x more parameters shipped per round)",
        base_ratio,
        schedule.mean_ratio(),
        schedule.mean_ratio() / base_ratio
    );
    println!();
    println!("BCRS never exceeds the uniform round time, but fast clients use the");
    println!("time they would have spent waiting to upload more of their update.");

    // Eq. 6: the adjusted averaging coefficients.
    let fractions = vec![1.0 / links.len() as f64; links.len()];
    let coeffs = schedule.adjusted_coefficients(&fractions, 0.3);
    println!();
    println!(
        "adjusted averaging coefficients (alpha = 0.3): {:?}",
        coeffs
            .iter()
            .map(|c| (c * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
