//! Plugging a custom compressor into the compression pipeline.
//!
//! The paper positions its framework as a foundation that "integrates common
//! compression techniques". This example shows the extension point: implement
//! the [`Compressor`] trait, and the sparse update it produces flows through
//! overlap analysis, OPWA masking and aggregation exactly like the built-in
//! Top-K. Here we build a layer-aware Top-K that budgets the retained
//! coordinates per segment (a common trick to keep small layers represented),
//! and compare it against plain Top-K and QSGD quantization on wire size and
//! reconstruction error.
//!
//! Run with `cargo run --release --example custom_compressor`.

use bwfl::prelude::*;

/// Top-K applied independently to fixed-size segments of the vector, so every
/// segment (think: every layer) keeps its share of coordinates.
struct SegmentedTopK {
    segment: usize,
}

impl Compressor for SegmentedTopK {
    fn compress(&self, dense: &[f32], ratio: f64) -> CompressedUpdate {
        let inner = TopK::new();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut start = 0usize;
        while start < dense.len() {
            let end = (start + self.segment).min(dense.len());
            let chunk = &dense[start..end];
            if let CompressedUpdate::Sparse(s) = inner.compress(chunk, ratio) {
                for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                    indices.push(start as u32 + i);
                    values.push(v);
                }
            }
            start = end;
        }
        CompressedUpdate::Sparse(SparseUpdate::new(indices, values, dense.len()))
    }

    fn name(&self) -> &'static str {
        "segmented-topk"
    }
}

fn reconstruction_error(original: &[f32], compressed: &CompressedUpdate) -> f64 {
    let rec = compressed.to_dense();
    let num: f64 = original
        .iter()
        .zip(rec.iter())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum();
    let den: f64 = original.iter().map(|&a| (a as f64).powi(2)).sum();
    (num / den.max(1e-12)).sqrt()
}

fn main() {
    // A synthetic "model delta": a mixture of a few large coordinates (as
    // gradient deltas typically have) and broad small noise.
    let mut rng = Xoshiro256::new(5);
    let n = 50_000usize;
    let delta: Vec<f32> = (0..n)
        .map(|i| {
            let base = (rng.next_f32() - 0.5) * 0.01;
            if i % 997 == 0 {
                base + (rng.next_f32() - 0.5) * 2.0
            } else {
                base
            }
        })
        .collect();
    let dense_bytes = n * 4;

    let ratio = 0.05;
    let compressors: Vec<Box<dyn Compressor>> = vec![
        Box::new(TopK::new()),
        Box::new(SegmentedTopK { segment: 5_000 }),
        Box::new(RandK::new(11)),
        Box::new(Threshold::new()),
        Box::new(Qsgd::new(15, 11)),
    ];

    println!("dense update: {n} parameters, {dense_bytes} bytes, target ratio {ratio}");
    println!(
        "{:>16} {:>12} {:>12} {:>16}",
        "compressor", "wire bytes", "vs dense", "rel. L2 error"
    );
    for c in &compressors {
        let out = c.compress(&delta, ratio);
        println!(
            "{:>16} {:>12} {:>11.1}x {:>16.4}",
            c.name(),
            out.wire_size_bytes(),
            dense_bytes as f64 / out.wire_size_bytes() as f64,
            reconstruction_error(&delta, &out)
        );
    }

    // The custom compressor's output is a normal SparseUpdate, so OPWA's
    // overlap analysis applies unchanged.
    let seg = SegmentedTopK { segment: 5_000 };
    let clients: Vec<SparseUpdate> = (0..5)
        .map(|k| {
            let shifted: Vec<f32> = delta
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % 5 == k { v * 2.0 } else { v })
                .collect();
            seg.compress(&shifted, ratio).as_sparse().unwrap().clone()
        })
        .collect();
    let refs: Vec<&SparseUpdate> = clients.iter().collect();
    let overlap = OverlapCounts::from_updates(&refs).stats();
    println!(
        "\noverlap of 5 simulated clients using the custom compressor: {:.1}% singletons",
        overlap.singleton_fraction() * 100.0
    );
    let mask = OpwaMask::from_overlap(&OverlapCounts::from_updates(&refs), 5.0, 1);
    println!(
        "OPWA would enlarge {} of {} retained coordinates",
        mask.enlarged_count(),
        overlap.total_retained
    );
}
