//! Layer-aware compression with [`LayerPlan`] — plus a custom codec plugged
//! into the same registry.
//!
//! The paper's framework treats the model delta as one flat vector, but real
//! models are heterogeneous per layer: big weight matrices tolerate
//! aggressive Top-K while a handful of bias coordinates collapses under it.
//! This example shows the three extension points working together:
//!
//! 1. **Layouts** — `fl-nn`'s [`ParamLayout`] names each slice of the flat
//!    vector (`linear0.weight`, `linear0.bias`, …) in the exact order
//!    `flatten_params` packs it.
//! 2. **Plans** — a [`LayerPlan`] such as `"*.bias=dense;*=topk"` assigns one
//!    codec per segment with first-match glob rules. Mixed plans frame their
//!    per-segment payloads into the `Segmented` wire kind (honest bytes,
//!    framing included); uniform plans collapse to the flat codec bit for
//!    bit.
//! 3. **Custom codecs** — implement [`UpdateCodec`], register it by name, and
//!    reference it from a plan rule like any built-in. Because it emits the
//!    standard sparse wire format, decode, overlap analysis and the round
//!    engine all compose for free.
//!
//! Run with `cargo run --release --example custom_compressor`.

use bwfl::prelude::*;

/// A custom codec: Top-K at *half* the requested ratio — the kind of
/// per-tenant policy knob a real deployment might register ("this workload
/// only gets half the budget the scheduler hands out").
struct HalfBudgetTopK;

impl UpdateCodec for HalfBudgetTopK {
    fn name(&self) -> String {
        "half-topk".into()
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, _rng: &mut Xoshiro256) -> WireUpdate {
        let sparse = TopK::new()
            .compress(dense, (ratio / 2.0).max(1e-6))
            .into_sparse()
            .expect("TopK is a sparsifier");
        // The standard sparse wire format: the default decode, overlap
        // analysis and OPWA masking all understand our bytes.
        bwfl::compress::wire::encode_sparse(&sparse)
    }
}

fn half_topk_factory(
    arg: Option<&str>,
    _ctx: &CodecCtx,
) -> Result<Box<dyn UpdateCodec>, SpecError> {
    if let Some(a) = arg {
        return Err(SpecError::BadArg {
            codec: "half-topk".into(),
            reason: format!("takes no argument, got {a:?}"),
        });
    }
    Ok(Box::new(HalfBudgetTopK))
}

fn main() {
    // A small model, its flat delta, and the layout naming every slice.
    let mut rng = Xoshiro256::new(5);
    let mut model = mlp(128, &[128, 64], 10, &mut rng);
    let layout = ParamLayout::of(&model);
    println!("model layout: {layout}");

    // Fake one round of training drift to get a realistic delta.
    let before = flatten_params(&model);
    let nudged: Vec<f32> = before
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            w + if i % 37 == 0 {
                0.05
            } else {
                0.0005 * (i % 7) as f32
            }
        })
        .collect();
    unflatten_params(&mut model, &nudged);
    let delta: Vec<f32> = before
        .iter()
        .zip(nudged.iter())
        .map(|(a, b)| a - b)
        .collect();
    let dense_bytes = delta.len() * 4;

    // One registry serves built-ins and the custom codec alike.
    let mut registry = CodecRegistry::with_builtins();
    registry.register("half-topk", half_topk_factory);

    let segments = segment_defs(&layout);
    let ctx = CodecCtx::new(delta.len(), 11);
    let ratio = 0.05;

    let plans = [
        "*=topk",                                // uniform: collapses to flat topk
        "*.bias=dense;*=topk",                   // biases exact, weights top-k
        "*.bias=dense;*=topk+qsgd:6",            // + 6-bit values on the weights
        "linear0*=half-topk;*=topk",             // custom codec on the first layer
        "*.bias=dense;linear2*=ef-topk;*=randk", // per-layer EF residuals
    ];

    println!(
        "\ndense delta: {} parameters, {dense_bytes} bytes, target ratio {ratio}",
        delta.len()
    );
    println!("{:>42} {:>12} {:>10}", "plan", "wire bytes", "vs dense");
    for raw in &plans {
        let plan: LayerPlan = raw.parse().expect("example plans parse");
        let mut codec = plan
            .resolve(&registry, &segments, &ctx)
            .expect("example plans resolve");
        let mut stream = Xoshiro256::new(17);
        let wire = codec.encode(&delta, ratio, &mut stream);
        codec.decode(&wire).expect("self-encoded bytes decode");
        println!(
            "{raw:>42} {:>12} {:>9.1}x",
            wire.len(),
            dense_bytes as f64 / wire.len() as f64
        );
        // Mixed plans are self-describing on the wire: the per-segment byte
        // split is readable straight from the frame.
        if let Some(seg_lens) = wire.segment_byte_lens() {
            for (seg, bytes) in layout.segments().iter().zip(seg_lens.iter()) {
                println!("{:>42}   {:>6} B  ({} coords)", seg.name, bytes, seg.len);
            }
        }
    }

    // The same plan drives the full round engine: set
    // `config.layer_compressors`, hand the builder the registry with the
    // custom codec, and the per-layer byte breakdown lands in every record.
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 2;
    config.max_threads = 1;
    config.cost_basis = CostBasis::Encoded;
    config.layer_compressors = Some("*.bias=dense;linear0*=half-topk;*=topk".parse().unwrap());
    let result = SessionBuilder::from_config(&config)
        .codec_registry(registry)
        .build()
        .run();
    println!(
        "\nround engine with plan {}:",
        config.layer_compressors.as_ref().unwrap()
    );
    for record in &result.records {
        println!(
            "  round {}: {} uplink bytes, acc {:.3}",
            record.round, record.uplink_bytes, record.test_accuracy
        );
        for l in record.layer_bytes.as_ref().expect("mixed plan breakdown") {
            println!("    {:<16} {:>8} B", l.layer, l.uplink_bytes);
        }
    }
}
