//! Plugging a custom codec into the spec-driven compression pipeline.
//!
//! The paper positions its framework as a foundation that "integrates common
//! compression techniques". This example shows both extension points:
//!
//! 1. **Specs** — parse pipeline descriptions like `"topk"`, `"qsgd:6"`,
//!    `"ef-topk"` and the composed `"topk+qsgd:6"` into codecs through the
//!    [`CodecRegistry`], and compare the *real* encoded wire sizes (varint
//!    delta indices, bit-packed levels) against the dense f32 payload.
//! 2. **Custom codecs** — implement [`UpdateCodec`], register it under a
//!    name, and build it from a spec string (`"segmented-topk:5000"`) like
//!    any built-in. Here we build a layer-aware Top-K that budgets the
//!    retained coordinates per segment (a common trick to keep small layers
//!    represented); because it emits the standard sparse wire format, decode,
//!    overlap analysis and OPWA masking come for free.
//!
//! Run with `cargo run --release --example custom_compressor`.

use bwfl::prelude::*;

/// Top-K applied independently to fixed-size segments of the vector, so every
/// segment (think: every layer) keeps its share of coordinates.
struct SegmentedTopK {
    segment: usize,
}

impl UpdateCodec for SegmentedTopK {
    fn name(&self) -> String {
        format!("segmented-topk:{}", self.segment)
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, _rng: &mut Xoshiro256) -> WireUpdate {
        let inner = TopK::new();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut start = 0usize;
        while start < dense.len() {
            let end = (start + self.segment).min(dense.len());
            let chunk = &dense[start..end];
            if let Some(s) = inner.compress(chunk, ratio).into_sparse() {
                for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                    indices.push(start as u32 + i);
                    values.push(v);
                }
            }
            start = end;
        }
        let sparse = SparseUpdate::new(indices, values, dense.len());
        // Emitting the standard sparse wire format means the default
        // `UpdateCodec::decode` already understands our bytes.
        fl_compress::wire::encode_sparse(&sparse)
    }
}

/// Registry factory: `"segmented-topk:5000"` → a 5000-wide segmented Top-K.
fn segmented_topk_factory(
    arg: Option<&str>,
    _ctx: &CodecCtx,
) -> Result<Box<dyn UpdateCodec>, SpecError> {
    let segment: usize = match arg {
        None => 4096,
        Some(a) => a.parse().map_err(|_| SpecError::BadArg {
            codec: "segmented-topk".into(),
            reason: format!("segment size {a:?} is not an integer"),
        })?,
    };
    if segment == 0 {
        return Err(SpecError::BadArg {
            codec: "segmented-topk".into(),
            reason: "segment size must be positive".into(),
        });
    }
    Ok(Box::new(SegmentedTopK { segment }))
}

fn reconstruction_error(original: &[f32], decoded: &CompressedUpdate) -> f64 {
    let rec = decoded.to_dense();
    let num: f64 = original
        .iter()
        .zip(rec.iter())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum();
    let den: f64 = original.iter().map(|&a| (a as f64).powi(2)).sum();
    (num / den.max(1e-12)).sqrt()
}

fn main() {
    // A synthetic "model delta": a mixture of a few large coordinates (as
    // gradient deltas typically have) and broad small noise.
    let mut rng = Xoshiro256::new(5);
    let n = 50_000usize;
    let delta: Vec<f32> = (0..n)
        .map(|i| {
            let base = (rng.next_f32() - 0.5) * 0.01;
            if i % 997 == 0 {
                base + (rng.next_f32() - 0.5) * 2.0
            } else {
                base
            }
        })
        .collect();
    let dense_bytes = n * 4;

    // One registry serves built-ins and the custom codec alike.
    let mut registry = CodecRegistry::with_builtins();
    registry.register("segmented-topk", segmented_topk_factory);
    let ctx = CodecCtx::new(n, 11);

    let ratio = 0.05;
    let specs = [
        "topk",
        "segmented-topk:5000",
        "randk",
        "threshold",
        "qsgd:6",
        "topk+qsgd:6",
        "ef-topk",
    ];

    println!("dense update: {n} parameters, {dense_bytes} bytes, target ratio {ratio}");
    println!(
        "{:>18} {:>12} {:>12} {:>16}",
        "codec", "wire bytes", "vs dense", "rel. L2 error"
    );
    for raw in &specs {
        let spec: CompressorSpec = raw.parse().expect("example specs parse");
        let mut codec = registry.build(&spec, &ctx).expect("example specs resolve");
        let mut stream = Xoshiro256::new(17);
        let wire = codec.encode(&delta, ratio, &mut stream);
        let decoded = codec.decode(&wire).expect("self-encoded bytes decode");
        println!(
            "{:>18} {:>12} {:>11.1}x {:>16.4}",
            codec.name(),
            wire.len(),
            dense_bytes as f64 / wire.len() as f64,
            reconstruction_error(&delta, &decoded)
        );
    }

    // The custom codec decodes to a normal SparseUpdate, so OPWA's overlap
    // analysis applies unchanged.
    let mut seg = registry
        .build(&"segmented-topk:5000".parse().unwrap(), &ctx)
        .unwrap();
    let clients: Vec<SparseUpdate> = (0..5)
        .map(|k| {
            let shifted: Vec<f32> = delta
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % 5 == k { v * 2.0 } else { v })
                .collect();
            let mut stream = Xoshiro256::new(100 + k as u64);
            let wire = seg.encode(&shifted, ratio, &mut stream);
            seg.decode(&wire).unwrap().into_sparse().unwrap()
        })
        .collect();
    let refs: Vec<&SparseUpdate> = clients.iter().collect();
    let overlap = OverlapCounts::from_updates(&refs).stats();
    println!(
        "\noverlap of 5 simulated clients using the custom codec: {:.1}% singletons",
        overlap.singleton_fraction() * 100.0
    );
    let mask = OpwaMask::from_overlap(&OverlapCounts::from_updates(&refs), 5.0, 1);
    println!(
        "OPWA would enlarge {} of {} retained coordinates",
        mask.enlarged_count(),
        overlap.total_retained
    );
}
