//! Non-IID partitioning and the degree-of-overlap phenomenon.
//!
//! Reproduces, at example scale, the observations behind the paper's Fig. 4
//! and Fig. 5: (1) Dirichlet label-skew partitioning concentrates classes on
//! few clients as β shrinks, and (2) after Top-K compression most retained
//! parameters appear in only one client's update, and the effect strengthens
//! with the compression level.
//!
//! Run with `cargo run --release --example noniid_overlap`.

use bwfl::prelude::*;

fn main() {
    let spec = DatasetPreset::Cifar10Like.spec(0.3);
    let (train, _test) = spec.generate(42);

    println!("== Dirichlet label-skew partition (Fig. 5) ==");
    for beta in [0.5, 0.1] {
        let parts = dirichlet_partition(&train, 10, beta, 8, 1);
        let stats = PartitionStats::from_partition(&parts, &train);
        println!("\nbeta = {beta}   (rows = clients, columns = classes)");
        for (client, row) in stats.counts.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|c| format!("{c:>5}")).collect();
            println!("  client {client}: {}", cells.join(" "));
        }
        println!(
            "  label skew (mean max-class share): {:.3}",
            stats.label_skew()
        );
    }

    println!("\n== Degree of overlap after Top-K (Fig. 4) ==");
    // Train one round of local models so the deltas are realistic, then
    // compress at two levels and measure how often coordinates co-occur.
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.record_overlap = true;
    config.rounds = 1;
    config.dataset_scale = 0.3;

    for beta in [0.5, 0.1] {
        for cr in [0.1, 0.01] {
            config.beta = beta;
            config.compression_ratio = cr;
            let result = run_experiment(&config);
            let overlap = result.merged_overlap().expect("overlap recorded");
            print!("beta = {beta:>3}, CR = {cr:>4}: ");
            for (d, frac) in overlap.fractions.iter().enumerate() {
                print!("deg{}={:>5.1}%  ", d + 1, frac * 100.0);
            }
            println!("(singletons: {:.1}%)", overlap.singleton_fraction() * 100.0);
        }
    }

    println!("\nAs in the paper, the share of parameters retained by a single client");
    println!("grows as the compression ratio shrinks — the motivation for OPWA's");
    println!("parameter mask, which enlarges exactly those coordinates.");
}
