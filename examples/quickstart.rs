//! Quickstart: train BCRS+OPWA on the CIFAR-10-like synthetic benchmark and
//! compare it against uniform Top-K and uncompressed FedAvg.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart           # reduced-size run (~1 min)
//! cargo run --release --example quickstart -- --full # paper-scale settings
//! ```

use bwfl::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (rounds, scale) = if full { (200, 1.0) } else { (25, 0.25) };

    println!("bwfl quickstart — β = 0.1 (severe non-IID), CR = 0.1");
    println!("{:-<68}", "");

    let mut results = Vec::new();
    for algorithm in [Algorithm::FedAvg, Algorithm::TopK, Algorithm::BcrsOpwa] {
        let mut config = ExperimentConfig::paper_setting(
            algorithm,
            DatasetPreset::Cifar10Like,
            0.1, // beta: severe heterogeneity
            0.1, // compression ratio
        );
        config.rounds = rounds;
        config.dataset_scale = scale;

        print!("{:>10}: ", algorithm.name());
        let result = run_experiment_with(&config, |r| {
            if (r.round + 1) % 5 == 0 {
                print!("[r{} acc {:.2}] ", r.round + 1, r.test_accuracy);
            }
        });
        println!();
        println!(
            "{:>10}  final acc {:.3} | best {:.3} | cumulative comm {:.1}s (uncompressed would be {:.1}s)",
            algorithm.name(),
            result.final_accuracy,
            result.best_accuracy,
            result.records.last().unwrap().cumulative_actual_s,
            result.records.last().unwrap().cumulative_max_s,
        );
        results.push((algorithm, result));
    }

    println!("{:-<68}", "");
    println!("accuracy-vs-communication-time (final round):");
    for (alg, r) in &results {
        let last = r.records.last().unwrap();
        println!(
            "  {:>10}: {:.3} accuracy after {:.1} s of communication",
            alg.name(),
            last.test_accuracy,
            last.cumulative_actual_s
        );
    }
    println!("\nThe BCRS+OPWA run should reach comparable-or-better accuracy than");
    println!("FedAvg while spending a small fraction of its communication time,");
    println!("and should beat uniform Top-K at equal communication budget.");
}
