//! # bwfl — Bandwidth-Aware and Overlap-Weighted Compression for
//! Communication-Efficient Federated Learning
//!
//! A from-scratch Rust reproduction of the ICPP '24 paper by Tang et al.
//! The workspace contains the paper's two contributions — **BCRS**
//! (bandwidth-aware compression-ratio scheduling) and **OPWA**
//! (overlap-aware parameter-weighted averaging) — together with every
//! substrate the evaluation needs: a small neural-network training engine,
//! synthetic non-IID federated datasets, a sparsification/quantization
//! compression library and a latency/bandwidth network simulator.
//!
//! This crate is the single entry point: it re-exports the sub-crates and a
//! [`prelude`] with the types most programs need.
//!
//! ## Quick start
//!
//! ```
//! use bwfl::prelude::*;
//!
//! // A small configuration (reduced dataset / rounds) of the paper's
//! // BCRS+OPWA algorithm on the CIFAR-10-like synthetic benchmark.
//! let mut config = ExperimentConfig::quick(Algorithm::BcrsOpwa);
//! config.rounds = 3;
//! let result = run_experiment(&config);
//! assert_eq!(result.records.len(), 3);
//! println!("final accuracy: {:.3}", result.final_accuracy);
//! ```
//!
//! ## The round engine and sweeps
//!
//! Experiments execute on a pluggable [`core::session::FederatedSession`]
//! round engine: client selection, compression-ratio assignment and the
//! server update are policy traits ([`core::policy`]) wired by
//! [`core::session::SessionBuilder`], and whole experiment grids run in
//! parallel with shared dataset generation via [`core::sweep`]:
//!
//! ```
//! use bwfl::prelude::*;
//!
//! let mut base = ExperimentConfig::quick(Algorithm::TopK);
//! base.rounds = 2;
//! let results = SweepGrid::new(base)
//!     .algorithms([Algorithm::FedAvg, Algorithm::TopK])
//!     .run();
//! assert_eq!(results.len(), 2);
//! ```
//!
//! ## The codec pipeline
//!
//! Uplink compression is spec-driven: a [`compress::spec::CompressorSpec`]
//! string such as `"topk"`, `"qsgd:8"` or the composed `"topk+qsgd:4"`
//! resolves through the [`compress::registry::CodecRegistry`] into an
//! [`compress::codec::UpdateCodec`] that encodes every client update into a
//! real, versioned byte buffer ([`compress::wire::WireUpdate`]). Set
//! [`core::config::ExperimentConfig::compressor`] to run any algorithm over
//! any codec, and switch [`core::config::ExperimentConfig::cost_basis`] to
//! [`netsim::cost::CostBasis::Encoded`] to charge the network simulator the
//! encoded bytes instead of the paper's analytic `2·V·CR` formula:
//!
//! ```
//! use bwfl::prelude::*;
//!
//! let mut config = ExperimentConfig::quick(Algorithm::TopK);
//! config.rounds = 2;
//! config.compressor = Some("topk+qsgd:4".parse().unwrap());
//! config.cost_basis = CostBasis::Encoded;
//! let result = run_experiment(&config);
//! assert!(result.records[0].uplink_bytes > 0);
//! ```
//!
//! ## The downlink leg
//!
//! The communication model is bidirectional. Set
//! [`core::config::ExperimentConfig::downlink_compressor`] to route the
//! server→client broadcast through a codec too: the global-parameter delta
//! is encoded once per round (error-feedback residuals held server-side in
//! the [`compress::downlink::DownlinkChannel`]), clients train from the
//! decoded view, `RoundRecord::downlink_bytes` reports the broadcast
//! buffer's exact length, and each client's download joins the round's
//! straggler bound:
//!
//! ```
//! use bwfl::prelude::*;
//!
//! let mut config = ExperimentConfig::quick(Algorithm::TopK);
//! config.rounds = 2;
//! config.downlink_compressor = Some("ef-topk".parse().unwrap());
//! config.cost_basis = CostBasis::Encoded;
//! let result = run_experiment(&config);
//! assert!(result.records[0].downlink_bytes > 0);
//! ```
//!
//! ## Simulating realistic fleets
//!
//! Set [`core::config::ExperimentConfig::scenario`] to drive the fleet
//! through trace-driven dynamics — diurnal participation waves, Poisson
//! churn, tiered link classes with jitter, correlated tower outages, or the
//! bit-identical replay of a recorded `bwfl-trace-v1` file (see
//! [`netsim::scenario`]). Cohorts are drawn from the currently reachable
//! clients, transfers are priced over the scenario's per-round links, and
//! each record reports participation/churn telemetry:
//!
//! ```
//! use bwfl::prelude::*;
//!
//! let mut config = ExperimentConfig::quick(Algorithm::TopK);
//! config.rounds = 3;
//! config.num_clients = 16;
//! config.scenario = Some("diurnal:period=8,min_up=0.3,max_up=0.9".parse().unwrap());
//! let result = run_experiment(&config);
//! let fleet = result.records[0].scenario.expect("scenario telemetry");
//! assert!(fleet.available <= 16);
//! ```

pub use fl_compress as compress;
pub use fl_core as core;
pub use fl_data as data;
pub use fl_netsim as netsim;
pub use fl_nn as nn;
pub use fl_tensor as tensor;

/// The types most users need, in one import.
pub mod prelude {
    pub use fl_compress::{
        migrate_planned_residual, CodecCtx, CodecRegistry, CodecStage, CompressedUpdate,
        Compressor, CompressorSpec, DownlinkChannel, ErrorFeedback, LayerPlan, PlanRule,
        PlannedCodec, Qsgd, RandK, ResidualState, ResidualStore, SegmentDef, SparseUpdate,
        SpecError, Threshold, TopK, UpdateCodec, WireError, WireUpdate,
    };
    pub use fl_core::runner::{evaluate_params, run_experiment_with, stream_experiment};
    pub use fl_core::{
        allocate_layer_budgets, default_codec_spec, default_plan_policy, plan_weights,
        record_scenario_trace, resolve_codec_spec, run_experiment, run_sweep, run_sweep_threaded,
        scenario_seed, segment_defs, AdaptivePlanSpec, Algorithm, AvailabilitySelector,
        BcrsRatioPolicy, BcrsSchedule, BcrsScheduler, ClientRoster, ClientSelector,
        ExperimentConfig, ExperimentResult, FederatedSession, LayerBcrsPolicy, LayerBytes,
        ModelPreset, MomentumServer, OpwaMask, OverlapCounts, OverlapStats, PlanAssignment,
        PlanCtx, PlanDecision, PlanPolicy, PlanTelemetry, RatioDecision, RatioPolicy, RoundOutput,
        RoundRecord, ScenarioHandle, ScenarioSelector, ServerOpt, SessionBuilder, SgdServer,
        StaticPlanPolicy, SweepGrid, UniformRatio, UniformSelector,
    };
    pub use fl_data::{
        dirichlet_partition, BatchLoader, ClientPartition, Dataset, DatasetPreset, PartitionStats,
    };
    pub use fl_netsim::{
        ChurnScenario, CommModel, CorrelatedDropoutScenario, CostBasis, DiurnalScenario,
        FleetEvent, FleetState, Link, LinkGenerator, RecordingScenario, RoundBreakdown,
        RoundTiming, Scenario, ScenarioSpec, ScenarioTelemetry, TierClass, TieredScenario,
        TimeAccumulator, TimedEvent, TraceReader, TraceScenario,
    };
    pub use fl_nn::{
        flatten_params, mlp, segment_l1_masses, small_cnn, try_unflatten_params, unflatten_params,
        Layer, LayoutError, ParamLayout, ParamSegment, Sequential, Sgd, SoftmaxCrossEntropy,
    };
    pub use fl_tensor::{Rng, Shape, SplitMix64, Tensor, Xoshiro256};
}
