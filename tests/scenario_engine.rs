//! Integration tests of the trace-driven scenario engine: thread-count
//! invariance of dynamic-fleet runs, the `bwfl-trace-v1` format's round-trip
//! and rejection properties, and the golden-fixture replay that pins the
//! generators' byte output.
//!
//! To re-capture the golden fixture after an *intentional* generator change:
//! `GOLDEN_PRINT=1 cargo test --release --test scenario_engine golden -- --nocapture`
//! and paste the output into `tests/fixtures/towers_n16_seed7.trace`.

use bwfl::prelude::*;
use proptest::prelude::*;
use std::io::Cursor;

const GOLDEN_FIXTURE: &str = include_str!("fixtures/towers_n16_seed7.trace");

fn golden_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 6;
    config.num_clients = 16;
    config.seed = 7;
    config.max_threads = 1;
    config.scenario = Some("towers:groups=4,outage=0.3,repair=0.4".parse().unwrap());
    config
}

fn fixture_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/towers_n16_seed7.trace"
    )
    .to_string()
}

/// The per-round fleet-size trajectory of a finished run.
fn trajectory(records: &[RoundRecord], num_clients: usize) -> Vec<usize> {
    records
        .iter()
        .map(|r| r.scenario.map(|t| t.available).unwrap_or(num_clients))
        .collect()
}

// --- Determinism across thread counts -------------------------------------

#[test]
fn scenario_sessions_are_thread_count_invariant() {
    for spec in ["diurnal:period=4", "churn:leave=0.15,join=0.4"] {
        let mut config = ExperimentConfig::quick(Algorithm::BcrsOpwa);
        config.rounds = 3;
        config.num_clients = 16;
        config.scenario = Some(spec.parse().unwrap());
        let serial = SessionBuilder::from_config(&config)
            .threads(1)
            .build()
            .run();
        let threaded = SessionBuilder::from_config(&config)
            .threads(8)
            .build()
            .run();
        assert_eq!(serial.records, threaded.records, "{spec}");
    }
}

#[test]
fn scenario_sweeps_are_thread_count_invariant_and_match_direct_runs() {
    let mut base = ExperimentConfig::quick(Algorithm::TopK);
    base.rounds = 3;
    base.num_clients = 16;
    base.max_threads = 1;
    let configs = SweepGrid::new(base)
        .algorithms([Algorithm::FedAvg, Algorithm::Bcrs])
        .scenario_options([
            None,
            Some("diurnal:period=4".parse().unwrap()),
            Some("towers:groups=4,outage=0.3,repair=0.4".parse().unwrap()),
        ])
        .configs();
    let serial = run_sweep_threaded(&configs, 1);
    let threaded = run_sweep_threaded(&configs, 8);
    for ((config, a), b) in configs.iter().zip(&serial).zip(&threaded) {
        assert_eq!(a.records, b.records, "sweep threads changed {config:?}");
        let direct = run_experiment(config);
        assert_eq!(a.records, direct.records, "sweep diverged from {config:?}");
    }
}

#[test]
fn scenarios_produce_distinct_fleet_trajectories_under_one_seed() {
    let specs = [
        "diurnal:period=4,min_up=0.2,max_up=0.9",
        "churn:leave=0.2,join=0.4",
        "towers:groups=4,outage=0.3,repair=0.4",
    ];
    let mut trajectories = Vec::new();
    for spec in specs {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 6;
        config.num_clients = 16;
        config.scenario = Some(spec.parse().unwrap());
        let result = run_experiment(&config);
        trajectories.push(trajectory(&result.records, 16));
    }
    for (i, a) in trajectories.iter().enumerate() {
        for b in &trajectories[i + 1..] {
            assert_ne!(a, b, "two scenarios share a fleet trajectory");
        }
    }
}

// --- Record-then-replay ----------------------------------------------------

#[test]
fn recorded_runs_replay_bit_identically_from_the_trace_file() {
    let mut config = ExperimentConfig::quick(Algorithm::EfTopK);
    config.rounds = 4;
    config.num_clients = 16;
    config.scenario = Some("churn:leave=0.2,join=0.5".parse().unwrap());
    let trace = record_scenario_trace(&config, config.rounds).expect("recording succeeds");
    let path = std::env::temp_dir().join("bwfl_scenario_engine_replay.trace");
    std::fs::write(&path, &trace).expect("trace file writes");

    let generated = run_experiment(&config);
    let mut replayed_config = config.clone();
    replayed_config.scenario = Some(
        format!("trace:{}", path.display())
            .parse()
            .expect("trace spec parses"),
    );
    let replayed = run_experiment(&replayed_config);
    let _ = std::fs::remove_file(&path);
    assert_eq!(generated.records, replayed.records);
}

#[test]
fn golden_fixture_is_what_the_towers_generator_emits() {
    let config = golden_config();
    let trace = record_scenario_trace(&config, config.rounds).expect("recording succeeds");
    if std::env::var("GOLDEN_PRINT").is_ok() {
        print!("{trace}");
        return;
    }
    assert_eq!(
        trace, GOLDEN_FIXTURE,
        "the towers generator no longer reproduces the committed fixture"
    );
}

#[test]
fn golden_fixture_replays_like_the_generator() {
    let config = golden_config();
    let generated = run_experiment(&config);
    let mut replayed_config = config.clone();
    replayed_config.scenario = Some(ScenarioSpec::Trace {
        path: fixture_path(),
    });
    let replayed = run_experiment(&replayed_config);
    assert_eq!(generated.records, replayed.records);
    // The dynamic fleet actually did something in this window.
    assert!(trajectory(&generated.records, 16).iter().any(|&n| n < 16));
}

// --- Trace-format properties ----------------------------------------------

/// Strategy: one fleet event over an 8-client fleet, with arbitrary finite
/// positive link parameters.
fn event_strategy() -> impl Strategy<Value = FleetEvent> {
    (0usize..5, 0usize..8, 1e-3f64..1e12, 0.0f64..100.0).prop_map(
        |(kind, client, bandwidth_bps, latency_s)| {
            let link = Link {
                bandwidth_bps,
                latency_s,
            };
            match kind {
                0 => FleetEvent::Down { client },
                1 => FleetEvent::Up { client },
                2 => FleetEvent::Leave { client },
                3 => FleetEvent::LinkSet { client, link },
                _ => FleetEvent::Join { client, link },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any event stream with non-decreasing rounds survives the
    /// render → parse round trip exactly, including float bit patterns.
    #[test]
    fn trace_text_round_trips(
        steps in proptest::collection::vec((0usize..3, event_strategy()), 0..40),
    ) {
        let mut round = 0;
        let mut events = Vec::new();
        let mut text = String::from("bwfl-trace-v1 clients=8\n");
        for (gap, event) in steps {
            round += gap;
            let timed = TimedEvent { round, event };
            text.push_str(&timed.to_string());
            text.push('\n');
            events.push(timed);
        }
        let reader = TraceReader::new(Cursor::new(text.into_bytes())).unwrap();
        let parsed: Vec<TimedEvent> = reader.map(|e| e.unwrap()).collect();
        prop_assert_eq!(parsed, events);
    }
}

#[test]
fn corrupt_traces_are_rejected() {
    // Header corruption fails at construction.
    for (text, why) in [
        ("", "empty input"),
        ("not-a-trace clients=8\n", "wrong magic"),
        ("bwfl-trace-v1\n", "missing clients"),
        ("bwfl-trace-v1 clients=0\n", "empty fleet"),
        ("bwfl-trace-v1 clients=8 extra\n", "trailing header token"),
    ] {
        assert!(
            TraceScenario::from_reader(Cursor::new(text.as_bytes().to_vec())).is_err(),
            "{why}: {text:?}"
        );
    }
    // Event corruption fails at the offending line.
    for (body, why) in [
        ("0 explode 1", "unknown verb"),
        ("0 down 99", "client out of range"),
        ("0 link 1 -5.0 0.1", "negative bandwidth"),
        ("0 join 1 1e6 nan", "non-finite latency"),
        ("3 down 1\n1 up 1", "out-of-order rounds"),
    ] {
        let text = format!("bwfl-trace-v1 clients=8\n{body}\n");
        let reader = TraceReader::new(Cursor::new(text.into_bytes())).unwrap();
        let results: Vec<_> = reader.collect();
        assert!(
            results.iter().any(|r| r.is_err()),
            "{why}: {body:?} parsed cleanly"
        );
    }
    // A missing trace file surfaces as an I/O error when the spec builds.
    let spec = ScenarioSpec::Trace {
        path: "/nonexistent/bwfl.trace".to_string(),
    };
    assert!(spec.build(8, 0).is_err());
}
