//! End-to-end integration tests: full experiments through the public `bwfl`
//! API, spanning every crate in the workspace.

use bwfl::prelude::*;

fn quick(algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(algorithm);
    c.rounds = 8;
    c.dataset_scale = 0.15;
    c.max_threads = 2;
    c
}

#[test]
fn full_pipeline_produces_consistent_records() {
    let config = quick(Algorithm::BcrsOpwa);
    let result = run_experiment(&config);
    assert_eq!(result.records.len(), config.rounds);
    for (i, r) in result.records.iter().enumerate() {
        assert_eq!(r.round, i);
        assert!(r.test_accuracy >= 0.0 && r.test_accuracy <= 1.0);
        assert!(r.comm_actual_s > 0.0);
        assert!(r.comm_max_s >= r.comm_min_s);
        assert_eq!(r.selected_clients.len(), config.clients_per_round());
        // Selected clients are distinct and in range.
        let mut s = r.selected_clients.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), config.clients_per_round());
        assert!(s.iter().all(|&c| c < config.num_clients));
    }
    // Cumulative series are non-decreasing.
    for w in result.records.windows(2) {
        assert!(w[1].cumulative_actual_s >= w[0].cumulative_actual_s);
        assert!(w[1].cumulative_max_s >= w[0].cumulative_max_s);
    }
}

#[test]
fn training_beats_random_initialization() {
    let mut config = quick(Algorithm::FedAvg);
    config.rounds = 15;
    let result = run_experiment(&config);
    // 10-class problem: random guessing is ~0.1.
    assert!(
        result.best_accuracy > 0.25,
        "FedAvg should learn well above chance, got {}",
        result.best_accuracy
    );
}

#[test]
fn compression_reduces_communication_time_with_modest_accuracy_cost() {
    let fedavg = run_experiment(&quick(Algorithm::FedAvg));
    let topk = run_experiment(&quick(Algorithm::TopK));
    let t_fedavg = fedavg.records.last().unwrap().cumulative_actual_s;
    let t_topk = topk.records.last().unwrap().cumulative_actual_s;
    // The quick config's model is small enough that latency (incompressible)
    // is a large share of the round time, so the saving is well below the
    // 10x payload reduction; it must still be clearly faster.
    assert!(
        t_topk < t_fedavg * 0.8,
        "Top-K at CR=0.1 should clearly cut communication time ({t_topk} vs {t_fedavg})"
    );
}

#[test]
fn bcrs_equalizes_client_upload_times() {
    let result = run_experiment(&quick(Algorithm::Bcrs));
    for r in &result.records {
        // BCRS actual time never exceeds the uncompressed straggler.
        assert!(r.comm_actual_s <= r.comm_max_s + 1e-9);
        // And the gap between the fastest and slowest scheduled client is
        // small relative to the uniform-compression spread (equal-pace goal).
        assert!(r.comm_min_s <= r.comm_actual_s);
    }
    // BCRS ships more data per round than the base ratio.
    assert!(
        result.records[0].mean_compression_ratio >= result.config.compression_ratio,
        "BCRS mean CR should be at least the base ratio"
    );
}

#[test]
fn bcrs_opwa_beats_uniform_topk_at_high_compression() {
    // The paper's headline qualitative claim (Table 2): under severe
    // compression, BCRS+OPWA retains much more accuracy than uniform Top-K.
    let mut topk = quick(Algorithm::TopK);
    let mut ours = quick(Algorithm::BcrsOpwa);
    for c in [&mut topk, &mut ours] {
        c.compression_ratio = 0.01;
        c.beta = 0.1;
        c.rounds = 12;
        c.seed = 7;
    }
    let acc_topk = run_experiment(&topk).best_accuracy;
    let acc_ours = run_experiment(&ours).best_accuracy;
    assert!(
        acc_ours >= acc_topk,
        "BCRS+OPWA ({acc_ours}) should not lose to uniform Top-K ({acc_topk}) at CR=0.01"
    );
}

#[test]
fn error_feedback_improves_or_matches_plain_topk_over_time() {
    let mut plain = quick(Algorithm::TopK);
    let mut ef = quick(Algorithm::EfTopK);
    for c in [&mut plain, &mut ef] {
        c.compression_ratio = 0.02;
        c.rounds = 12;
        c.seed = 3;
    }
    let p = run_experiment(&plain);
    let e = run_experiment(&ef);
    // EF accumulates dropped mass, so its final model should not be
    // drastically worse; allow a small tolerance for noise on tiny runs.
    assert!(
        e.best_accuracy >= p.best_accuracy - 0.1,
        "EF-Top-K {} collapsed versus Top-K {}",
        e.best_accuracy,
        p.best_accuracy
    );
}

#[test]
fn opwa_composes_with_plain_topk() {
    // The paper argues OPWA is independent of the compression scheduler; the
    // TopK+OPWA variant must run and apply the mask (overlap stats recorded)
    // while using uniform ratios.
    let mut c = quick(Algorithm::TopKOpwa);
    c.rounds = 3;
    let r = run_experiment(&c);
    assert_eq!(r.records.len(), 3);
    assert!(r.records[0].overlap.is_some());
    assert!((r.records[0].mean_compression_ratio - c.compression_ratio).abs() < 1e-12);
}

#[test]
fn coefficient_adjustment_ablation_changes_trajectory() {
    // Disabling the Eq. 6 clamp is the DESIGN.md ablation; it must produce a
    // valid but different run from standard BCRS.
    let mut with = quick(Algorithm::Bcrs);
    with.rounds = 4;
    let mut without = with.clone();
    without.disable_coefficient_adjustment = true;
    let a = run_experiment(&with);
    let b = run_experiment(&without);
    assert_eq!(a.records.len(), b.records.len());
    assert_ne!(
        a.accuracy_series(),
        b.accuracy_series(),
        "the ablation should change the aggregation weights and thus the trajectory"
    );
}

#[test]
fn different_seeds_give_different_trajectories_same_seed_identical() {
    let mut a = quick(Algorithm::TopK);
    a.rounds = 4;
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra1 = run_experiment(&a);
    let ra2 = run_experiment(&a);
    let rb = run_experiment(&b);
    assert_eq!(ra1.accuracy_series(), ra2.accuracy_series());
    assert_ne!(ra1.accuracy_series(), rb.accuracy_series());
}

#[test]
fn scaling_client_count_works() {
    for n in [10usize, 16, 20] {
        let mut c = quick(Algorithm::BcrsOpwa);
        c.num_clients = n;
        c.rounds = 2;
        c.gamma = (n / 2) as f32;
        let r = run_experiment(&c);
        assert_eq!(r.records[0].selected_clients.len(), n / 2);
    }
}

#[test]
fn all_three_dataset_presets_run() {
    for preset in [
        DatasetPreset::Cifar10Like,
        DatasetPreset::Cifar100Like,
        DatasetPreset::SvhnLike,
    ] {
        let mut c = quick(Algorithm::Bcrs);
        c.dataset = preset;
        c.rounds = 2;
        c.dataset_scale = 0.1;
        let r = run_experiment(&c);
        assert_eq!(r.records.len(), 2, "{preset:?}");
    }
}

#[test]
fn session_engine_reproduces_run_experiment_through_the_facade() {
    // A hand-built session and the convenience wrapper must agree through
    // the public bwfl API. (The 1-vs-4-thread full-record determinism gate
    // lives in fl-core's runner tests.)
    let mut config = quick(Algorithm::BcrsOpwa);
    config.max_threads = 4;
    let via_runner = run_experiment(&config);
    let via_session = SessionBuilder::from_config(&config).build().run();
    assert_eq!(via_session.records, via_runner.records);
}

#[test]
fn sweep_driver_matches_individual_runs() {
    let mut base = quick(Algorithm::TopK);
    base.rounds = 3;
    let grid = SweepGrid::new(base).algorithms([Algorithm::FedAvg, Algorithm::TopK]);
    let configs = grid.configs();
    let swept = run_sweep_threaded(&configs, 2);
    assert_eq!(swept.len(), 2);
    for (config, result) in configs.iter().zip(swept.iter()) {
        assert_eq!(result.records, run_experiment(config).records);
    }
}

#[test]
fn dropout_and_server_momentum_scenarios_run_end_to_end() {
    let mut config = quick(Algorithm::BcrsOpwa);
    config.rounds = 6;
    config.dropout_rate = 0.5;
    config.server_momentum = 0.9;
    let result = run_experiment(&config);
    assert_eq!(result.records.len(), 6);
    assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
    // Cohorts stay valid even when dropout shrinks them.
    for r in &result.records {
        assert!(!r.selected_clients.is_empty());
        assert!(r.selected_clients.len() <= config.clients_per_round());
    }
    // Reproducible under the new policies too.
    let again = run_experiment(&config);
    assert_eq!(result.records, again.records);
}

#[test]
fn manual_round_stepping_exposes_round_outputs() {
    let mut config = quick(Algorithm::Bcrs);
    config.rounds = 2;
    let mut session = SessionBuilder::from_config(&config).build();
    let out = session.run_round();
    assert_eq!(out.record.round, 0);
    assert!(out.schedule.is_some(), "BCRS rounds carry their schedule");
    let result = session.run();
    assert_eq!(result.records.len(), 2);
}

#[test]
fn partition_stats_reflect_heterogeneity() {
    let mut severe = quick(Algorithm::TopK);
    severe.beta = 0.1;
    severe.rounds = 1;
    let mut moderate = severe.clone();
    moderate.beta = 5.0;
    let skew_severe = run_experiment(&severe).partition.label_skew();
    let skew_moderate = run_experiment(&moderate).partition.label_skew();
    assert!(skew_severe > skew_moderate);
}
