//! Integration tests of the layer-aware codec path: `LayerPlan` grammar
//! round-trips, `Segmented` wire round-trips (including crafted-corrupt
//! frames), the uniform-plan ≡ flat-codec fingerprint regression for all
//! seven algorithms, and the per-layer byte accounting through the round
//! engine.

use bwfl::compress::wire::{
    encode_dense, encode_segmented, encode_sparse, KIND_SEGMENTED, WIRE_MAGIC, WIRE_VERSION,
};
use bwfl::prelude::*;
use proptest::prelude::*;

fn registry() -> CodecRegistry {
    CodecRegistry::with_builtins()
}

const ALL_ALGORITHMS: [Algorithm; 7] = [
    Algorithm::FedAvg,
    Algorithm::TopK,
    Algorithm::EfTopK,
    Algorithm::RandK,
    Algorithm::Bcrs,
    Algorithm::BcrsOpwa,
    Algorithm::TopKOpwa,
];

/// The acceptance-criterion regression: a uniform plan (`"*=<spec>"`) is
/// bit-identical to the flat `<spec>` codec path — every field of every
/// record, for all seven algorithms, under the Analytic basis.
#[test]
fn uniform_plan_records_match_flat_codec_for_all_seven_algorithms() {
    for alg in ALL_ALGORITHMS {
        let mut flat = ExperimentConfig::quick(alg);
        flat.rounds = 3;
        flat.max_threads = 1;
        flat.compressor = Some("topk".parse().unwrap());
        let mut planned = flat.clone();
        planned.compressor = None;
        planned.layer_compressors = Some("*=topk".parse().unwrap());
        let a = run_experiment(&flat);
        let b = run_experiment(&planned);
        assert_eq!(a.records, b.records, "{alg:?}");
        assert!(
            b.records.iter().all(|r| r.layer_bytes.is_none()),
            "{alg:?}: uniform plans must not record a per-layer breakdown"
        );
    }
}

/// The same identity holds for a stateful (error-feedback) uniform plan.
#[test]
fn uniform_ef_plan_matches_flat_ef_codec() {
    let mut flat = ExperimentConfig::quick(Algorithm::TopK);
    flat.rounds = 3;
    flat.max_threads = 1;
    flat.compressor = Some("ef-topk".parse().unwrap());
    let mut planned = flat.clone();
    planned.compressor = None;
    planned.layer_compressors = Some("*=ef-topk".parse().unwrap());
    assert_eq!(
        run_experiment(&flat).records,
        run_experiment(&planned).records
    );
}

/// Mixed plans stay deterministic across thread counts (the per-segment RNG
/// draws happen inside each client's own stream, in segment order).
#[test]
fn mixed_plan_is_deterministic_across_thread_counts() {
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 3;
    config.layer_compressors = Some("*.bias=dense;*=randk".parse().unwrap());
    config.max_threads = 1;
    let sequential = run_experiment(&config);
    config.max_threads = 4;
    let parallel = run_experiment(&config);
    assert_eq!(sequential.records, parallel.records);
    assert!(sequential.records[0].layer_bytes.is_some());
}

/// Per-layer uplink bytes plus the per-client framing overhead reproduce the
/// honest wire total exactly, asserted against `WireUpdate::len()` by
/// re-encoding the same plan outside the engine.
#[test]
fn per_layer_breakdown_plus_framing_equals_the_wire_total() {
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 2;
    config.max_threads = 1;
    config.cost_basis = CostBasis::Encoded;
    config.layer_compressors = Some("*.bias=dense;*=topk".parse().unwrap());
    let mut session = FederatedSession::from_config(&config);
    let num_segments = session.param_layout().num_segments();
    let out = session.run_round();
    let breakdown = out.record.layer_bytes.as_ref().expect("mixed plan");
    assert_eq!(breakdown.len(), num_segments);
    let segments_total: usize = breakdown.iter().map(|l| l.uplink_bytes).sum();
    // Each client's frame: 4-byte header + varint(dense_len) + varint(n
    // segments) + one length varint per segment.
    let total: usize = out.uplink_wire_bytes.iter().sum();
    assert_eq!(out.record.uplink_bytes, total);
    let framing = total - segments_total;
    // Framing is positive and small: bounded by (4 + 5 + 5 + 5·segments) per
    // client, far below one f32 per model coordinate.
    let cohort = out.record.selected_clients.len();
    assert!(framing > 0);
    assert!(
        framing <= cohort * (14 + 5 * num_segments),
        "framing {framing}"
    );

    // Re-encode an identical delta with the same plan directly: the frame's
    // length equals header + varints + Σ(len-prefix + part len) exactly.
    let plan: LayerPlan = "*.bias=dense;*=topk".parse().unwrap();
    let layout = session.param_layout().clone();
    let mut codec = plan
        .resolve(
            &registry(),
            &segment_defs(&layout),
            &CodecCtx::new(layout.total_len(), 3),
        )
        .unwrap();
    let delta: Vec<f32> = (0..layout.total_len())
        .map(|i| ((i as f32) * 0.13).sin())
        .collect();
    let wire = codec.encode(&delta, 0.1, &mut Xoshiro256::new(1));
    let seg_lens = wire.segment_byte_lens().unwrap();
    let varint_len = |v: usize| -> usize {
        let mut n = 1;
        let mut v = v as u64 >> 7;
        while v > 0 {
            n += 1;
            v >>= 7;
        }
        n
    };
    let expected = 4
        + varint_len(layout.total_len())
        + varint_len(seg_lens.len())
        + seg_lens.iter().map(|&l| varint_len(l) + l).sum::<usize>();
    assert_eq!(wire.len(), expected, "framing overhead must be exact");
}

/// `LayerPlan` parse → Display → parse identity over a deterministic corpus.
#[test]
fn plan_display_roundtrips_for_a_spec_corpus() {
    let mut corpus = vec![
        "*=topk".to_string(),
        "conv*=topk;*.bias=dense;*=ef-topk+qsgd:4".to_string(),
        "linear?.weight=randk;*=threshold:0.01".to_string(),
        "*.bias=dense;linear2*=ef-topk;*=randk".to_string(),
    ];
    // Every registered codec name, alone and wrapped, as a catch-all rule.
    for name in registry().names() {
        let arged = match name {
            "qsgd" => "qsgd:8".to_string(),
            "threshold" => "threshold:0.01".to_string(),
            other => other.to_string(),
        };
        corpus.push(format!("*={arged}"));
        corpus.push(format!("first*={arged};*=topk"));
        corpus.push(format!("*=ef-{arged}"));
    }
    for raw in corpus {
        let plan: LayerPlan = raw.parse().unwrap_or_else(|e| panic!("{raw}: {e}"));
        assert_eq!(plan.to_string(), raw);
        let reparsed: LayerPlan = plan.to_string().parse().unwrap();
        assert_eq!(reparsed, plan, "{raw}");
    }
}

proptest! {
    /// Randomised plan shapes survive Display → parse unchanged.
    #[test]
    fn prop_plan_display_parse_is_the_identity(
        pattern_picks in proptest::collection::vec(0usize..6, 1..5),
        spec_picks in proptest::collection::vec(0usize..6, 1..5),
    ) {
        const PATTERNS: [&str; 6] = ["*", "conv*", "*.bias", "linear?.weight", "a_b-c*", "??nv2d*"];
        const SPECS: [&str; 6] = ["topk", "dense", "qsgd:8", "ef-topk", "topk+qsgd:4", "threshold:0.01"];
        let rules: Vec<String> = pattern_picks
            .iter()
            .zip(spec_picks.iter().cycle())
            .map(|(&p, &s)| format!("{}={}", PATTERNS[p % PATTERNS.len()], SPECS[s % SPECS.len()]))
            .collect();
        let raw = rules.join(";");
        let plan: LayerPlan = raw.parse().expect("constructed plans parse");
        prop_assert_eq!(plan.to_string(), raw.clone());
        let reparsed: LayerPlan = plan.to_string().parse().unwrap();
        prop_assert_eq!(&reparsed, &plan, "{}", raw);
    }
}

proptest! {
    /// Segmented wire buffers round-trip: random segment splits, mixed codecs
    /// per segment, decode reproduces every segment's own decode spliced at
    /// its offset.
    #[test]
    fn prop_segmented_encode_decode_roundtrip(
        seg_lens in proptest::collection::vec(1usize..40, 2..6),
        dense_seed in 0u64..500,
        codec_picks in proptest::collection::vec(0usize..3, 2..6),
    ) {
        const SPECS: [&str; 3] = ["topk", "dense", "qsgd:4"];
        let total: usize = seg_lens.iter().sum();
        let mut rng = Xoshiro256::new(dense_seed);
        let dense: Vec<f32> = (0..total).map(|_| rng.next_f32() * 2.0 - 1.0).collect();

        // Encode each segment with its own codec, frame, decode, compare.
        let reg = registry();
        let mut parts = Vec::new();
        let mut offset = 0usize;
        let mut expected: Vec<(u32, f32)> = Vec::new();
        for (i, &len) in seg_lens.iter().enumerate() {
            let spec: CompressorSpec = SPECS[codec_picks[i % codec_picks.len()] % SPECS.len()]
                .parse()
                .unwrap();
            let mut codec = reg.build(&spec, &CodecCtx::new(len, 7)).unwrap();
            let mut stream = Xoshiro256::new(1000 + i as u64);
            let wire = codec.encode(&dense[offset..offset + len], 0.3, &mut stream);
            let part_decoded = wire.decode().unwrap();
            match part_decoded {
                CompressedUpdate::Sparse(s) => {
                    for (&pi, &v) in s.indices().iter().zip(s.values().iter()) {
                        expected.push((offset as u32 + pi, v));
                    }
                }
                CompressedUpdate::Quantized { values, .. } => {
                    for (j, &v) in values.iter().enumerate() {
                        expected.push(((offset + j) as u32, v));
                    }
                }
            }
            parts.push(wire);
            offset += len;
        }
        let framed = encode_segmented(total, &parts);
        prop_assert_eq!(framed.kind().unwrap(), KIND_SEGMENTED);
        prop_assert_eq!(
            framed.segment_byte_lens().unwrap(),
            parts.iter().map(|p| p.len()).collect::<Vec<_>>()
        );
        let merged = framed.decode().expect("framed buffers decode");
        let s = merged.as_sparse().expect("segmented decodes sparse");
        prop_assert_eq!(s.dense_len(), total);
        let got: Vec<(u32, f32)> = s
            .indices()
            .iter()
            .zip(s.values().iter())
            .map(|(&i, &v)| (i, v))
            .collect();
        prop_assert_eq!(got, expected);
    }
}

proptest! {
    /// Crafted-corrupt segmented frames never panic or over-allocate — every
    /// mutation either still decodes or returns a typed `WireError`.
    #[test]
    fn prop_corrupted_segmented_frames_error_cleanly(
        flip_pos in 0usize..200,
        flip_bits in 1u8..255,
        truncate in 0usize..60,
    ) {
        let a = encode_sparse(&SparseUpdate::new(vec![1, 5], vec![1.0, -2.0], 30));
        let b = encode_dense(&[0.5, -0.25, 4.0]);
        let good = encode_segmented(33, &[a, b]);
        let mut bytes = good.as_bytes().to_vec();
        if truncate > 0 {
            let keep = bytes.len().saturating_sub(truncate);
            bytes.truncate(keep);
        }
        if !bytes.is_empty() {
            let pos = flip_pos % bytes.len();
            bytes[pos] ^= flip_bits;
        }
        // Must not panic; errors are typed.
        let _ = WireUpdate::from_bytes(bytes::Bytes::from(bytes)).decode();
    }
}

#[test]
fn hand_built_corrupt_segmented_frames_are_rejected() {
    let part = encode_sparse(&SparseUpdate::new(vec![0], vec![1.0], 3));

    // Lengths that do not tile the vector, nested frames, zero segments and
    // absurd counts are covered in-crate; here pin the end-to-end behaviour
    // of a frame whose inner part is itself corrupt.
    let mut buf = Vec::new();
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(KIND_SEGMENTED);
    buf.push(3); // varint dense_len
    buf.push(1); // varint segment count
    buf.push(part.len() as u8); // varint segment byte length (< 128)
    let mut inner = part.as_bytes().to_vec();
    inner[2] = 99; // corrupt the nested version byte
    buf.extend_from_slice(&inner);
    assert_eq!(
        WireUpdate::from_bytes(bytes::Bytes::from(buf)).decode(),
        Err(WireError::UnsupportedVersion(99))
    );
}

/// The typed layout error reaches the public session-level API.
#[test]
fn evaluate_params_surfaces_a_layout_error() {
    let config = ExperimentConfig::quick(Algorithm::TopK);
    let (_, test) = config
        .dataset
        .spec(config.dataset_scale)
        .generate(config.seed);
    let err = bwfl::core::runner::evaluate_params(&config, &[0.0; 3], &test).unwrap_err();
    assert_eq!(err.got, 3);
    assert!(err.expected > 3);
    assert!(err.to_string().contains("3 entries"));
    // A correctly sized vector evaluates fine.
    let ok = vec![0.0; err.expected];
    let acc = bwfl::core::runner::evaluate_params(&config, &ok, &test).unwrap();
    assert!((0.0..=1.0).contains(&acc));
}
