//! Smoke test of the `bwfl::prelude` re-export surface: everything a typical
//! program needs must be reachable from the single prelude import, and a
//! quick BCRS+OPWA experiment must run end-to-end through it.
//!
//! Unlike `end_to_end.rs` (which mixes prelude and direct crate paths), this
//! file deliberately imports *only* the prelude, so a broken or missing
//! re-export fails here even if the underlying crates still work.

use bwfl::prelude::*;

#[test]
fn quick_bcrs_opwa_runs_two_rounds_through_the_prelude() {
    let mut config = ExperimentConfig::quick(Algorithm::BcrsOpwa);
    config.rounds = 2;
    let result = run_experiment(&config);

    assert_eq!(result.records.len(), 2);
    assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
    assert!(result.model_params > 0);
    // BCRS+OPWA records overlap statistics every round.
    assert!(result.records.iter().all(|r| r.overlap.is_some()));
    // Communication accounting is monotone across rounds.
    assert!(
        result.records[1].cumulative_actual_s >= result.records[0].cumulative_actual_s,
        "cumulative communication time must not decrease"
    );
}

#[test]
fn prelude_exposes_the_building_blocks() {
    // Exercise one representative type from each re-exported crate, touching
    // them only through the prelude names.
    let mut rng = Xoshiro256::new(7);
    let dense: Vec<f32> = (0..100).map(|_| rng.next_f32() - 0.5).collect();

    // fl-compress via prelude.
    let sparse = TopK::new()
        .compress(&dense, 0.1)
        .as_sparse()
        .expect("TopK yields a sparse update")
        .clone();
    assert_eq!(sparse.nnz(), 10);

    // fl-netsim + fl-core via prelude.
    let links = LinkGenerator::paper_default().generate(4, 3);
    let schedule = BcrsScheduler::new(CommModel::paper_default()).schedule(&links, 4000.0, 0.1);
    assert_eq!(schedule.ratios.len(), 4);

    // fl-data via prelude.
    let (train, _test) = DatasetPreset::Cifar10Like.spec(0.05).generate(1);
    let parts = dirichlet_partition(&train, 4, 0.5, 2, 11);
    assert_eq!(parts.len(), 4);

    // fl-nn via prelude.
    let model = mlp(train.feature_dim(), &[16], train.num_classes(), &mut rng);
    let flat = flatten_params(&model);
    assert!(!flat.is_empty());
}
