//! Property-based integration tests of the paper's two algorithms.
//!
//! These use `proptest` to check the invariants that make BCRS and OPWA
//! correct over randomly drawn networks, cohorts and updates — not just the
//! hand-picked cases of the unit tests.

use bwfl::prelude::*;
// Explicit import so the `Rng` trait resolves to ours rather than the one in
// proptest's prelude (both preludes are glob-imported).
use bwfl::tensor::Rng;
use proptest::prelude::*;

/// Strategy: a plausible client link.
fn link_strategy() -> impl Strategy<Value = Link> {
    (0.1f64..5.0, 1.0f64..500.0).prop_map(|(mbps, ms)| Link::from_mbps_ms(mbps, ms))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BCRS invariant 1 (Fig. 1 / Alg. 2): no client's scheduled upload ever
    /// takes longer than the uniform-compression straggler, for any network.
    #[test]
    fn bcrs_never_exceeds_uniform_straggler(
        links in proptest::collection::vec(link_strategy(), 1..16),
        model_kb in 1.0f64..2000.0,
        base_ratio in 0.001f64..1.0,
    ) {
        let sched = BcrsScheduler::new(CommModel::paper_default())
            .schedule(&links, model_kb * 1024.0, base_ratio);
        let uniform_straggler = sched.uniform_times.iter().cloned().fold(0.0, f64::max);
        prop_assert!(sched.makespan() <= uniform_straggler + 1e-9);
        prop_assert!((sched.t_bench - uniform_straggler).abs() < 1e-9);
    }

    /// BCRS invariant 2: every scheduled ratio lies in [base_ratio, 1] and the
    /// slowest client keeps the base ratio.
    #[test]
    fn bcrs_ratios_bounded_and_monotone_in_bandwidth(
        links in proptest::collection::vec(link_strategy(), 2..12),
        model_kb in 10.0f64..500.0,
        base_ratio in 0.005f64..0.5,
    ) {
        let sched = BcrsScheduler::new(CommModel::paper_default())
            .schedule(&links, model_kb * 1024.0, base_ratio);
        for &r in &sched.ratios {
            prop_assert!(r >= base_ratio - 1e-12);
            prop_assert!(r <= 1.0 + 1e-12);
        }
        prop_assert!((sched.ratios[sched.benchmark_client] - base_ratio).abs() < 1e-9
            || sched.ratios[sched.benchmark_client] >= base_ratio);
        // Among clients with equal latency, higher bandwidth never gets a
        // smaller ratio.
        for i in 0..links.len() {
            for j in 0..links.len() {
                if (links[i].latency_s - links[j].latency_s).abs() < 1e-12
                    && links[i].bandwidth_bps > links[j].bandwidth_bps
                {
                    prop_assert!(sched.ratios[i] >= sched.ratios[j] - 1e-9);
                }
            }
        }
    }

    /// Eq. 6 invariant: adjusted coefficients are positive, bounded by alpha,
    /// and equal to alpha exactly when the client's CR share does not exceed
    /// its data share.
    #[test]
    fn adjusted_coefficients_bounded(
        links in proptest::collection::vec(link_strategy(), 2..10),
        alpha in 0.01f64..1.0,
    ) {
        let n = links.len();
        let sched = BcrsScheduler::new(CommModel::paper_default())
            .schedule(&links, 100_000.0, 0.05);
        let fractions = vec![1.0 / n as f64; n];
        let coeffs = sched.adjusted_coefficients(&fractions, alpha);
        let norm = sched.normalized_ratios();
        for ((&c, &f), &nr) in coeffs.iter().zip(fractions.iter()).zip(norm.iter()) {
            prop_assert!(c > 0.0);
            prop_assert!(c <= alpha + 1e-12);
            if nr <= f {
                prop_assert!((c - alpha).abs() < 1e-9);
            }
        }
    }

    /// OPWA invariant: masked aggregation differs from plain aggregation only
    /// on coordinates whose overlap degree is at most the threshold, where it
    /// is exactly gamma times larger.
    #[test]
    fn opwa_only_touches_low_overlap_coordinates(
        seed in 0u64..1000,
        gamma in 1.0f32..8.0,
        cohort in 2usize..6,
    ) {
        let mut rng = Xoshiro256::new(seed);
        let len = 200usize;
        let updates: Vec<SparseUpdate> = (0..cohort)
            .map(|_| {
                let dense: Vec<f32> = (0..len).map(|_| rng.next_f32() - 0.5).collect();
                TopK::new().compress(&dense, 0.1).as_sparse().unwrap().clone()
            })
            .collect();
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        let counts = OverlapCounts::from_updates(&refs);
        let mask = OpwaMask::from_overlap(&counts, gamma, 1);
        let coeffs = vec![1.0 / cohort as f64; cohort];
        let plain = fl_core::aggregate::aggregate_sparse(&refs, &coeffs, None);
        let masked = fl_core::aggregate::aggregate_sparse(&refs, &coeffs, Some(&mask));
        for i in 0..len {
            match counts.degree(i) {
                0 => {
                    prop_assert_eq!(plain[i], 0.0);
                    prop_assert_eq!(masked[i], 0.0);
                }
                1 => prop_assert!((masked[i] - plain[i] * gamma).abs() < 1e-4),
                _ => prop_assert!((masked[i] - plain[i]).abs() < 1e-5),
            }
        }
    }

    /// Overlap statistics invariants: fractions sum to one, total equals the
    /// number of distinct retained coordinates, and no degree exceeds the
    /// cohort size.
    #[test]
    fn overlap_stats_are_a_distribution(
        seed in 0u64..500,
        cohort in 1usize..8,
        ratio in 0.01f64..0.5,
    ) {
        let mut rng = Xoshiro256::new(seed);
        let len = 500usize;
        let updates: Vec<SparseUpdate> = (0..cohort)
            .map(|_| {
                let dense: Vec<f32> = (0..len).map(|_| rng.next_f32() - 0.5).collect();
                TopK::new().compress(&dense, ratio).as_sparse().unwrap().clone()
            })
            .collect();
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        let counts = OverlapCounts::from_updates(&refs);
        let stats = counts.stats();
        prop_assert_eq!(stats.cohort_size, cohort);
        prop_assert_eq!(stats.histogram_counts.len(), cohort);
        prop_assert_eq!(stats.total_retained as usize, counts.retained_coordinates());
        let total: u64 = stats.histogram_counts.iter().sum();
        prop_assert_eq!(total, stats.total_retained);
        if stats.total_retained > 0 {
            let frac_sum: f64 = stats.fractions.iter().sum();
            prop_assert!((frac_sum - 1.0).abs() < 1e-9);
        }
    }
}

/// A deterministic (non-proptest) sanity check that the whole experiment
/// pipeline honours the BCRS timing invariant round after round.
#[test]
fn experiment_level_bcrs_invariant() {
    let mut config = ExperimentConfig::quick(Algorithm::Bcrs);
    config.rounds = 5;
    config.compression_ratio = 0.02;
    let result = run_experiment(&config);
    for r in &result.records {
        assert!(r.comm_actual_s <= r.comm_max_s + 1e-9);
        assert!(r.mean_compression_ratio >= config.compression_ratio - 1e-12);
    }
}
