//! Round-record fingerprint regression: the full training + compression +
//! communication trajectory of every algorithm, under both the flat codec
//! path and a genuinely mixed layer plan (`Segmented` framing), hashed field
//! by field and pinned to the values the pre-entropy-coding engine produced.
//!
//! Any change to training numerics, codec bytes, aggregation order, or the
//! simulated communication model shows up here as a hash mismatch. The
//! expected values were captured at the commit preceding the entropy-coded
//! wire kind and the blocked matmul kernels, so this suite is the proof that
//! those rewrites left every existing record bit-identical.
//!
//! To re-capture after an *intentional* trajectory change:
//! `FP_PRINT=1 cargo test --release --test fingerprints -- --nocapture`

use bwfl::prelude::*;

const ALL_ALGORITHMS: [Algorithm; 7] = [
    Algorithm::FedAvg,
    Algorithm::TopK,
    Algorithm::EfTopK,
    Algorithm::RandK,
    Algorithm::TopKOpwa,
    Algorithm::Bcrs,
    Algorithm::BcrsOpwa,
];

/// FNV-1a, folded over a canonical little-endian byte stream. Float fields
/// enter via `to_bits`, so the hash pins bit patterns, not approximations.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Hash every field of every record. Destructured without a rest pattern so
/// that adding a `RoundRecord` field is a compile error here rather than a
/// silently unfingerprinted field (same trick as the struct's `PartialEq`).
fn fingerprint(records: &[RoundRecord]) -> u64 {
    let mut h = Fnv::new();
    h.usize(records.len());
    for r in records {
        let RoundRecord {
            round,
            test_accuracy,
            test_loss,
            train_loss,
            mean_compression_ratio,
            uplink_bytes,
            downlink_bytes,
            comm_actual_s,
            comm_max_s,
            comm_min_s,
            cumulative_actual_s,
            cumulative_max_s,
            cumulative_min_s,
            selected_clients,
            overlap,
            layer_bytes,
            scenario,
            plan,
        } = r;
        h.usize(*round);
        h.f64(*test_accuracy);
        h.f64(*test_loss);
        h.f64(*train_loss);
        h.f64(*mean_compression_ratio);
        h.usize(*uplink_bytes);
        h.usize(*downlink_bytes);
        h.f64(*comm_actual_s);
        h.f64(*comm_max_s);
        h.f64(*comm_min_s);
        h.f64(*cumulative_actual_s);
        h.f64(*cumulative_max_s);
        h.f64(*cumulative_min_s);
        h.usize(selected_clients.len());
        for &c in selected_clients {
            h.usize(c);
        }
        match overlap {
            None => h.u64(0),
            Some(o) => {
                h.u64(1);
                h.usize(o.cohort_size);
                h.u64(o.total_retained);
                h.usize(o.histogram_counts.len());
                for &c in &o.histogram_counts {
                    h.u64(c);
                }
                for &f in &o.fractions {
                    h.f64(f);
                }
            }
        }
        match layer_bytes {
            None => h.u64(0),
            Some(layers) => {
                h.u64(1);
                h.usize(layers.len());
                for l in layers {
                    h.bytes(l.layer.as_bytes());
                    h.usize(l.uplink_bytes);
                    h.usize(l.downlink_bytes);
                }
            }
        }
        // Unlike the tags above, `scenario: None` hashes *nothing*: the
        // field postdates the pinned EXPECTED table, and static-fleet runs
        // must keep their original fingerprints.
        if let Some(t) = scenario {
            h.u64(1);
            h.usize(t.available);
            h.usize(t.joined);
            h.usize(t.departed);
            h.usize(t.link_changes);
        }
        // Same post-pin rule as `scenario`: `plan: None` (every static run)
        // hashes nothing, so the EXPECTED table predating adaptive plans
        // stays valid.
        if let Some(p) = plan {
            h.u64(1);
            h.bytes(p.policy.as_bytes());
            h.bytes(p.plan.as_bytes());
            h.u64(p.epoch);
            h.usize(p.assignments.len());
            for a in &p.assignments {
                h.bytes(a.segment.as_bytes());
                h.bytes(a.spec.as_bytes());
                h.f64(a.ratio);
            }
        }
    }
    h.0
}

fn run(algorithm: Algorithm, plan: Option<&str>) -> u64 {
    let mut config = ExperimentConfig::quick(algorithm);
    config.rounds = 3;
    config.num_clients = 16;
    if let Some(p) = plan {
        config.layer_compressors = Some(p.parse().expect("fingerprint plan parses"));
    }
    let result = SessionBuilder::from_config(&config)
        .threads(1)
        .build()
        .run();
    fingerprint(&result.records)
}

/// Captured at the pre-PR commit (see module docs). `flat` is the
/// algorithm's own codec; `planned` drives the same algorithm through a
/// mixed all-sparse layer plan, so the `Segmented` wire kind and per-layer
/// byte breakdown are pinned too.
const EXPECTED: &[(&str, u64)] = &[
    ("fedavg/flat", 0xb03372fa5d801134),
    ("topk/flat", 0x74df1c8affa07121),
    ("eftopk/flat", 0x480d3c98c611db26),
    ("randk/flat", 0x07a896ae8785aedd),
    ("topk+opwa/flat", 0x0a67a817d12c0031),
    ("bcrs/flat", 0x4f3aebe4bd2ce32e),
    ("bcrs+opwa/flat", 0x097ba632d8c088d4),
    ("fedavg/planned", 0x130241a04d7e503b),
    // The plan *is* the uplink codec, so the three plain sparsifier
    // algorithms collapse to the same planned trajectory — pinned anyway,
    // as three independent routes into the Segmented path.
    ("topk/planned", 0x2c6540a4d381a969),
    ("eftopk/planned", 0x2c6540a4d381a969),
    ("randk/planned", 0x2c6540a4d381a969),
    ("topk+opwa/planned", 0xbe6dff1853edfd1f),
    ("bcrs/planned", 0x14f7511ec604d7de),
    ("bcrs+opwa/planned", 0xb22f1151cba044f9),
];

const PLAN: &str = "*.bias=randk;*=topk";

#[test]
fn round_record_fingerprints_are_pinned() {
    let mut got = Vec::new();
    for algorithm in ALL_ALGORITHMS {
        got.push((format!("{}/flat", algorithm.name()), run(algorithm, None)));
    }
    for algorithm in ALL_ALGORITHMS {
        got.push((
            format!("{}/planned", algorithm.name()),
            run(algorithm, Some(PLAN)),
        ));
    }
    if std::env::var("FP_PRINT").is_ok() {
        for (name, fp) in &got {
            println!("    (\"{name}\", {fp:#018x}),");
        }
        return;
    }
    assert_eq!(got.len(), EXPECTED.len());
    for ((name, fp), (exp_name, exp_fp)) in got.iter().zip(EXPECTED) {
        assert_eq!(name, exp_name, "fingerprint matrix order changed");
        assert_eq!(
            fp, exp_fp,
            "{name}: round-record trajectory is no longer bit-identical"
        );
    }
}
