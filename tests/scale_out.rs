//! Scale-out guarantees of the virtualized round engine: the sharded
//! aggregation tree is thread-count invariant for every algorithm, client
//! instantiation is O(cohort) — not O(population) — at 10^5 clients, and
//! error-feedback residuals survive in the roster's store across
//! non-consecutive selections.

use bwfl::core::policy::SelectionCtx;
use bwfl::prelude::*;

fn quick(algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(algorithm);
    c.rounds = 3;
    c
}

const ALL_ALGORITHMS: [Algorithm; 7] = [
    Algorithm::FedAvg,
    Algorithm::TopK,
    Algorithm::EfTopK,
    Algorithm::RandK,
    Algorithm::TopKOpwa,
    Algorithm::Bcrs,
    Algorithm::BcrsOpwa,
];

#[test]
fn records_are_thread_count_invariant_for_every_algorithm() {
    // The fixed-shard aggregation tree must make every algorithm's records —
    // losses, accuracies, byte counts, timings, all of it — bit-identical
    // between a serial and a heavily threaded run.
    for algorithm in ALL_ALGORITHMS {
        let mut config = quick(algorithm);
        config.num_clients = 16;
        let serial = SessionBuilder::from_config(&config)
            .threads(1)
            .build()
            .run();
        let threaded = SessionBuilder::from_config(&config)
            .threads(8)
            .build()
            .run();
        assert_eq!(
            serial.records,
            threaded.records,
            "{} diverges across thread counts",
            algorithm.name()
        );
    }
}

#[test]
fn records_are_thread_count_invariant_across_shard_boundaries() {
    // A cohort larger than one aggregation shard (32 clients) exercises the
    // partial-sum merge: 80 clients at 50% participation is a 40-client
    // cohort, i.e. two shards.
    let mut config = quick(Algorithm::TopK);
    config.num_clients = 80;
    let serial = SessionBuilder::from_config(&config)
        .threads(1)
        .build()
        .run();
    let threaded = SessionBuilder::from_config(&config)
        .threads(8)
        .build()
        .run();
    assert_eq!(serial.records, threaded.records);
}

#[test]
fn client_instantiation_is_bounded_by_the_cohort_at_1e5_clients() {
    // 10^5 clients, 64 selected per round: the roster must materialise
    // exactly the cohort each round and never hold more resident than that.
    let mut config = ExperimentConfig::quick(Algorithm::EfTopK);
    config.model = ModelPreset::Linear;
    config.num_clients = 100_000;
    config.participation = 64.0 / 100_000.0;
    config.rounds = 2;
    config.eval_every = 2;
    assert_eq!(config.clients_per_round(), 64);

    let mut session = SessionBuilder::from_config(&config).build();
    while !session.is_finished() {
        session.run_round();
    }
    let roster = session.roster();
    assert_eq!(roster.len(), 100_000);
    let selected = session.records().last().unwrap().selected_clients.len();
    assert_eq!(
        roster.round_instantiated(),
        selected,
        "the final round instantiated clients it did not select"
    );
    assert!(
        roster.peak_resident() <= 64,
        "peak resident clients {} exceeded the cohort",
        roster.peak_resident()
    );
    assert_eq!(roster.resident(), 0, "clients leaked past checkin");
    assert_eq!(roster.total_instantiated(), 2 * 64);
}

/// Selects a fixed cohort per round: {0, 1}, then {2, 3}, then {0, 1} again.
struct ScriptedSelector {
    round: usize,
}

impl ClientSelector for ScriptedSelector {
    fn select(&mut self, _ctx: &SelectionCtx<'_>, _rng: &mut Xoshiro256) -> Vec<usize> {
        let cohort = match self.round {
            0 | 2 => vec![0, 1],
            _ => vec![2, 3],
        };
        self.round += 1;
        cohort
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

#[test]
fn residuals_persist_across_non_consecutive_selections() {
    // Error-feedback residuals belong to the *client*, not to the round: a
    // client selected in rounds 0 and 2 (but not 1) must resume round 2 from
    // the residual it accumulated in round 0.
    let mut config = quick(Algorithm::EfTopK);
    config.num_clients = 4;
    config.rounds = 3;

    let mut session = SessionBuilder::from_config(&config)
        .selector(Box::new(ScriptedSelector { round: 0 }))
        .build();

    session.run_round();
    let roster_norm_after_0 = session.roster().residual_total_norm();
    assert_eq!(
        session.roster().residual_clients(),
        2,
        "both round-0 clients should have parked a residual"
    );
    assert!(roster_norm_after_0 > 0.0);

    session.run_round();
    // Round 1 selected {2, 3}; clients 0 and 1's residuals are untouched and
    // still parked in the store alongside the new ones.
    assert_eq!(session.roster().residual_clients(), 4);

    session.run_round();
    // Round 2 re-selected {0, 1}: their residuals were taken out, updated and
    // re-parked — the store still covers all four clients but the total norm
    // moved, which it could only do if checkout restored the old state.
    assert_eq!(session.roster().residual_clients(), 4);
    assert_ne!(session.roster().residual_total_norm(), roster_norm_after_0);
}

#[test]
fn sweep_grid_population_axis_runs_end_to_end() {
    // A small population sweep through the shared-data driver: same dataset,
    // growing N, cohort growing with it (participation fixed).
    let mut base = ExperimentConfig::quick(Algorithm::TopK);
    base.model = ModelPreset::Linear;
    base.rounds = 2;
    base.eval_every = 2;
    let grid = SweepGrid::new(base).client_counts([10, 200]);
    let results = run_sweep_threaded(&grid.configs(), 2);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].config.num_clients, 10);
    assert_eq!(results[1].config.num_clients, 200);
    assert_eq!(results[0].records.len(), 2);
    assert_eq!(results[1].records.len(), 2);
    // 50% participation: cohorts of 5 and 100 respectively.
    assert_eq!(results[0].records[0].selected_clients.len(), 5);
    assert_eq!(results[1].records[0].selected_clients.len(), 100);
}
