//! Integration tests of the spec-driven codec pipeline: encode→decode round
//! trips for every registered codec, the pinned wire header, and the
//! end-to-end honest-byte accounting through the experiment engine.

use bwfl::prelude::*;
use proptest::prelude::*;

fn registry() -> CodecRegistry {
    CodecRegistry::with_builtins()
}

/// One representative spec per registered codec family, plus the wrapper and
/// composition forms. Kept in sync with the registry by the test below.
fn representative_specs() -> Vec<CompressorSpec> {
    vec![
        "topk".parse().unwrap(),
        "randk".parse().unwrap(),
        "threshold".parse().unwrap(),
        "threshold:0.05".parse().unwrap(),
        "qsgd:8".parse().unwrap(),
        "dense".parse().unwrap(),
        "ef-topk".parse().unwrap(),
        "topk+qsgd:6".parse().unwrap(),
        "ef-randk+qsgd:8".parse().unwrap(),
    ]
}

#[test]
fn every_registered_codec_has_a_representative_spec() {
    let covered: Vec<String> = representative_specs()
        .iter()
        .flat_map(|s| s.stages.iter().map(|st| st.name.clone()))
        .collect();
    for name in registry().names() {
        assert!(
            covered.iter().any(|c| c == name),
            "registered codec {name:?} missing from the round-trip suite"
        );
    }
}

proptest! {
    /// Sparse codecs reproduce the retained coordinates exactly; quantized
    /// codecs reconstruct every coordinate within one level of the norm.
    #[test]
    fn prop_encode_decode_roundtrip_for_every_codec(
        dense in proptest::collection::vec(-5.0f32..5.0, 16..200),
        ratio in 0.05f64..1.0,
        stream_seed in 0u64..1000,
    ) {
        for spec in representative_specs() {
            let mut codec = registry()
                .build(&spec, &CodecCtx::new(dense.len(), 7))
                .expect("representative specs resolve");
            let mut rng = Xoshiro256::new(stream_seed);
            let wire = codec.encode(&dense, ratio, &mut rng);
            prop_assert!(!wire.is_empty(), "{spec}: empty wire buffer");
            let decoded = codec.decode(&wire).expect("self-encoded bytes decode");
            prop_assert_eq!(decoded.dense_len(), dense.len(), "{}", &spec);

            let is_quantized = spec.stages.iter().any(|s| s.name == "qsgd");
            // Rand-K rescales retained values by len/k for unbiasedness, so
            // only its coordinate structure (not the values) matches the
            // input.
            let rescaled = spec.stages[0].name == "randk";
            match decoded {
                CompressedUpdate::Sparse(ref s) if !is_quantized => {
                    // Exact round trip (error feedback sends delta+residual,
                    // where the residual starts at zero, so values still
                    // match the input on the first round).
                    for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                        if rescaled {
                            continue;
                        }
                        prop_assert_eq!(v, dense[i as usize], "{} index {}", &spec, i);
                    }
                }
                ref update => {
                    // Quantized payloads: within one level of the encoded
                    // group's norm (coarsest representative codec is qsgd:6,
                    // 31 levels; a norm/3 bound is comfortably loose).
                    let norm = dense.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
                    let tol = norm / 3.0 + 1e-4;
                    let rec = update.to_dense();
                    for (i, &r) in rec.iter().enumerate() {
                        if r != 0.0 && !rescaled {
                            prop_assert!(
                                (r - dense[i]).abs() <= tol as f32,
                                "{} coordinate {} decoded {} vs {}",
                                &spec, i, r, dense[i]
                            );
                        }
                    }
                }
            }

            // A second encode with identical inputs and stream state is
            // byte-identical for stateless codecs; stateful (EF) codecs may
            // differ, but must still decode.
            if !spec.error_feedback {
                let mut codec2 = registry()
                    .build(&spec, &CodecCtx::new(dense.len(), 7))
                    .unwrap();
                let mut rng2 = Xoshiro256::new(stream_seed);
                let wire2 = codec2.encode(&dense, ratio, &mut rng2);
                prop_assert_eq!(wire.as_bytes(), wire2.as_bytes(), "{} not deterministic", &spec);
            }
        }
    }
}

#[test]
fn golden_bytes_pin_the_wire_header() {
    // Format drift must fail CI: the first bytes of every encoded update are
    // magic 0xB3F1, version 1, then the payload kind.
    let dense = [0.0f32, 3.0, 0.0, -1.0];
    let mut rng = Xoshiro256::new(1);

    let mut topk = registry()
        .build(&"topk".parse().unwrap(), &CodecCtx::new(4, 0))
        .unwrap();
    let wire = topk.encode(&dense, 0.5, &mut rng);
    // kind 0 (sparse), dense_len 4, nnz 2, indices 1 and +2, f32 values.
    assert_eq!(
        wire.as_bytes(),
        [
            0xB3, 0xF1, 0x01, 0x00, // magic, version, kind
            0x04, 0x02, 0x01, 0x02, // dense_len, nnz, delta indices
            0x00, 0x00, 0x40, 0x40, // 3.0f32 LE
            0x00, 0x00, 0x80, 0xBF, // -1.0f32 LE
        ]
    );

    let mut qsgd = registry()
        .build(&"qsgd:8".parse().unwrap(), &CodecCtx::new(4, 0))
        .unwrap();
    let wire = qsgd.encode(&dense, 1.0, &mut rng);
    assert_eq!(&wire.as_bytes()[..4], [0xB3, 0xF1, 0x01, 0x01]);
    assert_eq!(wire.as_bytes()[5], 8, "bits byte");

    let mut composed = registry()
        .build(&"topk+qsgd:6".parse().unwrap(), &CodecCtx::new(4, 0))
        .unwrap();
    let wire = composed.encode(&dense, 0.5, &mut rng);
    assert_eq!(&wire.as_bytes()[..4], [0xB3, 0xF1, 0x01, 0x02]);
}

#[test]
fn encoded_cost_basis_charges_real_bytes_end_to_end() {
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 3;
    config.max_threads = 1;
    config.compressor = Some("topk+qsgd:4".parse().unwrap());
    config.cost_basis = CostBasis::Encoded;
    let result = run_experiment(&config);
    let analytic_bytes_per_round = (2.0 * result.model_bytes as f64 * config.compression_ratio)
        as usize
        * config.clients_per_round();
    for r in &result.records {
        assert!(r.uplink_bytes > 0);
        // 4-bit quantized values + varint indices are far below the analytic
        // 2·V·CR sparse accounting.
        assert!(
            r.uplink_bytes < analytic_bytes_per_round / 2,
            "round {}: encoded {} vs analytic {}",
            r.round,
            r.uplink_bytes,
            analytic_bytes_per_round
        );
    }
    // Determinism holds through the encoded path too.
    let again = run_experiment(&config);
    assert_eq!(result.records, again.records);
}

#[test]
fn csv_exposes_the_uplink_and_downlink_byte_columns() {
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 2;
    config.max_threads = 1;
    config.downlink_compressor = Some("topk".parse().unwrap());
    let result = run_experiment(&config);
    let csv = result.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("uplink_bytes"));
    assert!(header.contains("downlink_bytes"));
    let first_row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
    let up: usize = first_row[5].parse().expect("uplink_bytes cell is integral");
    assert_eq!(up, result.records[0].uplink_bytes);
    let down: usize = first_row[6]
        .parse()
        .expect("downlink_bytes cell is integral");
    assert_eq!(down, result.records[0].downlink_bytes);
    assert!(down > 0);
}

#[test]
fn csv_rows_always_match_the_header_width() {
    // Column-count invariant: every row of `RoundRecord::to_csv` has exactly
    // as many cells as the header names — including the downlink_bytes
    // column — whether or not the downlink leg is simulated and whether or
    // not evaluations were skipped (NaN placeholders).
    for downlink in [None, Some("ef-topk".parse().unwrap())] {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 3;
        config.max_threads = 1;
        config.eval_every = 2;
        config.downlink_compressor = downlink;
        let csv = run_experiment(&config).to_csv();
        let mut lines = csv.lines();
        let columns = lines.next().unwrap().split(',').count();
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), columns, "malformed row: {line}");
            rows += 1;
        }
        assert_eq!(rows, config.rounds);
    }
}

#[test]
fn bidirectional_accounting_runs_end_to_end() {
    // The full bidirectional path: EF broadcast downlink + composed uplink
    // codec, both priced from real encoded bytes.
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.rounds = 3;
    config.max_threads = 1;
    config.compressor = Some("topk+qsgd:4".parse().unwrap());
    config.downlink_compressor = Some("ef-topk".parse().unwrap());
    config.cost_basis = CostBasis::Encoded;
    let result = run_experiment(&config);
    for r in &result.records {
        assert!(r.uplink_bytes > 0);
        assert!(r.downlink_bytes > 0);
        assert!(r.comm_actual_s > 0.0);
    }
    // The broadcast is one buffer, not a per-client sum: far below the
    // cohort's total uplink traffic would be at the same ratio, and bounded
    // by one dense model plus framing.
    assert!(result.records[0].downlink_bytes <= result.model_bytes + 64);
    // Determinism holds through the bidirectional path.
    let again = run_experiment(&config);
    assert_eq!(result.records, again.records);
}

/// Deterministic corpus: `parse → Display → parse` is the identity for every
/// registered codec name, alone and in every supported wrapper/composition
/// shape.
#[test]
fn spec_display_roundtrips_for_every_registered_shape() {
    let registry = registry();
    for name in registry.names() {
        let arged = |n: &str| match n {
            "qsgd" => format!("{n}:8"),
            "threshold" => format!("{n}:0.01"),
            other => other.to_string(),
        };
        let mut shapes = vec![name.to_string(), arged(name), format!("ef-{}", arged(name))];
        if name != "qsgd" {
            shapes.push(format!("{}+qsgd:4", arged(name)));
            shapes.push(format!("ef-{}+qsgd:4", arged(name)));
        }
        for raw in shapes {
            let spec: CompressorSpec = raw.parse().unwrap_or_else(|e| panic!("{raw}: {e}"));
            assert_eq!(spec.to_string(), raw);
            let reparsed: CompressorSpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec, "{raw}");
        }
    }
}

proptest! {
    /// Randomised spec shapes — arbitrary stage names (registered or not:
    /// parsing never consults the registry), optional arguments and the
    /// `ef-` wrapper — survive `Display → parse` unchanged.
    #[test]
    fn prop_spec_display_parse_is_the_identity(
        ef in 0u8..2,
        name_picks in proptest::collection::vec(0usize..8, 1..4),
        arg_picks in proptest::collection::vec(0usize..5, 1..4),
    ) {
        const NAMES: [&str; 8] = [
            "topk", "randk", "threshold", "qsgd",
            "my-codec", "seg_mented", "x2", "a-b_c3",
        ];
        const ARGS: [Option<&str>; 5] = [None, Some("8"), Some("0.01"), Some("x-y_z"), Some("1e-3")];
        let stages: Vec<CodecStage> = name_picks
            .iter()
            .zip(arg_picks.iter().cycle())
            .map(|(&n, &a)| match ARGS[a % ARGS.len()] {
                Some(arg) => CodecStage::with_arg(NAMES[n % NAMES.len()], arg),
                None => CodecStage::new(NAMES[n % NAMES.len()]),
            })
            .collect();
        let spec = CompressorSpec { error_feedback: ef == 1, stages };
        let printed = spec.to_string();
        let reparsed: CompressorSpec = printed.parse().expect("printed specs reparse");
        prop_assert_eq!(&reparsed, &spec, "{}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}
