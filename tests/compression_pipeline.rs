//! Integration tests of the compression pipeline across crates: dense model
//! deltas from `fl-nn`, compressors from `fl-compress`, overlap/OPWA from
//! `fl-core`, and communication accounting from `fl-netsim`.

use bwfl::prelude::*;

/// Build a realistic dense "model delta" by actually training a small model
/// for one epoch and differencing the parameters.
fn realistic_delta(seed: u64) -> Vec<f32> {
    let spec = DatasetPreset::Cifar10Like.spec(0.05);
    let (train, _) = spec.generate(seed);
    let mut rng = Xoshiro256::new(seed);
    let mut model = mlp(
        train.feature_dim(),
        &[32, 16],
        train.num_classes(),
        &mut rng,
    );
    let before = flatten_params(&model);
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 0.0);
    let loader = BatchLoader::new(32, false);
    for (x, y) in loader.epoch_batches(&train, &mut rng) {
        model.zero_grad();
        let logits = model.forward(&x);
        loss.forward(&logits, &y);
        let g = loss.backward();
        model.backward(&g);
        opt.step(&mut model);
    }
    let after = flatten_params(&model);
    before
        .iter()
        .zip(after.iter())
        .map(|(b, a)| b - a)
        .collect()
}

#[test]
fn topk_wire_roundtrip_preserves_retained_coordinates() {
    let delta = realistic_delta(1);
    let compressed = TopK::new().compress(&delta, 0.1);
    let sparse = compressed.as_sparse().unwrap();
    // Serialize to the binary wire format and back.
    let restored = SparseUpdate::from_wire(sparse.to_wire()).unwrap();
    assert_eq!(&restored, sparse);
    // Every retained coordinate exactly matches the original delta.
    for (&i, &v) in restored.indices().iter().zip(restored.values().iter()) {
        assert_eq!(v, delta[i as usize]);
    }
}

#[test]
fn compression_ratio_controls_wire_size_and_time() {
    let delta = realistic_delta(2);
    let model_bytes = delta.len() as f64 * 4.0;
    let link = Link::from_mbps_ms(1.0, 100.0);
    let comm = CommModel::paper_default();
    let mut previous_bytes = usize::MAX;
    let mut previous_time = f64::INFINITY;
    for ratio in [0.5, 0.1, 0.01] {
        let c = TopK::new().compress(&delta, ratio);
        let bytes = c.wire_size_bytes();
        assert!(bytes < previous_bytes);
        previous_bytes = bytes;
        let t = comm.sparse_uplink_time(&link, model_bytes, ratio);
        assert!(t < previous_time);
        previous_time = t;
    }
}

#[test]
fn error_feedback_recovers_information_across_rounds() {
    // Compressing the same delta repeatedly with EF must eventually transmit
    // (almost) all of its mass: the cumulative transmitted vector approaches
    // the cumulative input.
    let delta = realistic_delta(3);
    let mut ef = ErrorFeedback::new(TopK::new(), delta.len());
    let rounds = 25;
    let mut transmitted = vec![0.0f32; delta.len()];
    for _ in 0..rounds {
        let sent = ef.compress_with_feedback(&delta, 0.1);
        for (t, s) in transmitted.iter_mut().zip(sent.to_dense().iter()) {
            *t += s;
        }
    }
    let target: Vec<f32> = delta.iter().map(|d| d * rounds as f32).collect();
    let err: f64 = transmitted
        .iter()
        .zip(target.iter())
        .map(|(t, g)| ((t - g) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = target
        .iter()
        .map(|g| (*g as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    assert!(
        err / norm < 0.25,
        "EF should transmit most of the repeated signal (relative error {})",
        err / norm
    );
}

#[test]
fn bcrs_schedule_integrates_with_compressor_nnz() {
    // The ratios BCRS assigns translate into actual retained-coordinate
    // counts when fed to Top-K, and the resulting wire sizes reproduce the
    // scheduled upload times under the communication model.
    let delta = realistic_delta(4);
    let model_bytes = delta.len() as f64 * 4.0;
    let links = LinkGenerator::paper_default().generate(5, 9);
    let comm = CommModel::paper_default();
    let schedule = BcrsScheduler::new(comm).schedule(&links, model_bytes, 0.02);
    for (i, (&ratio, link)) in schedule.ratios.iter().zip(links.iter()).enumerate() {
        let c = TopK::new().compress(&delta, ratio);
        let sparse = c.as_sparse().unwrap();
        let achieved = sparse.compression_ratio();
        assert!(
            (achieved - ratio).abs() < 1e-3,
            "client {i}: achieved CR {achieved} vs scheduled {ratio}"
        );
        // Time computed from the actual wire size ~ scheduled time (the wire
        // size is 8 bytes/coordinate = the 2x model-bytes×CR accounting).
        let t_wire = comm.transfer_time(link, sparse.wire_size_bytes() as f64);
        assert!(
            (t_wire - schedule.scheduled_times[i]).abs() / schedule.scheduled_times[i] < 0.02,
            "client {i}: wire-size time {t_wire} vs scheduled {}",
            schedule.scheduled_times[i]
        );
    }
}

#[test]
fn opwa_mask_amplifies_rare_coordinates_in_aggregation() {
    // Five clients with overlapping Top-K patterns: aggregate with and
    // without OPWA and verify singleton coordinates grow by gamma.
    let deltas: Vec<Vec<f32>> = (0..5).map(|s| realistic_delta(10 + s)).collect();
    let updates: Vec<SparseUpdate> = deltas
        .iter()
        .map(|d| TopK::new().compress(d, 0.05).as_sparse().unwrap().clone())
        .collect();
    let refs: Vec<&SparseUpdate> = updates.iter().collect();
    let counts = OverlapCounts::from_updates(&refs);
    let gamma = 5.0f32;
    let mask = OpwaMask::from_overlap(&counts, gamma, 1);
    let coeffs = vec![0.2f64; 5];

    let plain = fl_core::aggregate::aggregate_sparse(&refs, &coeffs, None);
    let weighted = fl_core::aggregate::aggregate_sparse(&refs, &coeffs, Some(&mask));
    let mut checked = 0;
    for i in 0..plain.len() {
        match counts.degree(i) {
            1 => {
                assert!(
                    (weighted[i] - plain[i] * gamma).abs() < 1e-5,
                    "singleton coordinate {i} should be enlarged"
                );
                checked += 1;
            }
            d if d > 1 => {
                assert!((weighted[i] - plain[i]).abs() < 1e-5);
            }
            _ => {}
        }
    }
    assert!(
        checked > 0,
        "no singleton coordinates found — test is vacuous"
    );
}

#[test]
fn quantizer_fits_in_the_same_pipeline() {
    let delta = realistic_delta(6);
    let q = Qsgd::new(15, 1).compress(&delta, 1.0);
    // The quantized update is dense but cheaper on the wire than f32.
    assert!(q.wire_size_bytes() < delta.len() * 4 / 4);
    // Aggregating a mix of sparse and quantized updates works.
    let s = TopK::new().compress(&delta, 0.1);
    let agg = fl_core::aggregate::aggregate_compressed(&[&s, &q], &[0.5, 0.5], None);
    assert_eq!(agg.len(), delta.len());
    assert!(agg.iter().any(|&v| v != 0.0));
}
