//! Offline functional shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, range / tuple / `prop_map` / [`collection::vec`]
//! strategies, `prop_assert!` / `prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`] — as a real property-based test runner:
//! each test samples its strategies `cases` times from a PRNG seeded
//! deterministically from the test's name, so failures are reproducible.
//!
//! Differences from upstream, by design: no shrinking (a failure reports the
//! sampled inputs, not a minimal counterexample), no persisted regression
//! files, and `prop_assert*` panics instead of returning `TestCaseError`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim only needs sampling.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )+};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`]: `size` is an exact `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only the `cases` knob is implemented).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default; every strategy here is cheap to sample.
            Self { cases: 256 }
        }
    }

    /// SplitMix64 PRNG, seeded from the test name for reproducible runs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Deterministic seed derived from a test's name (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a [`proptest!`] body (panics on failure; the
/// shim does not shrink, so the panic message is the diagnostic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skip the current case when an assumption does not hold. Upstream retries
/// with a fresh input; the shim simply moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property-based tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0.0f32..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            // Bind each strategy once, shadowing the argument name; the loop
            // below re-shadows it with a sampled value per case.
            $(let $arg = $strat;)+
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(
            x in 1.5f64..2.5,
            n in 3u64..9,
            v in collection::vec(-1.0f32..1.0, 2..7),
        ) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e), "element {} out of range", e);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_is_used(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0.0f64..1.0, 10u64..20).prop_map(|(f, n)| f + n as f64);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10.0..21.0).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::deterministic("some::test");
        let mut b = TestRng::deterministic("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            TestRng::deterministic("other").next_u64(),
            TestRng::deterministic("some::test").next_u64()
        );
    }
}
