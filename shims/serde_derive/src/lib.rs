//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits are blanket-implemented for
//! every type, so the derives have nothing to generate; they exist only so
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
