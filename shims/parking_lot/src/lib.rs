//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot calling convention — `lock()` / `read()` /
//! `write()` return guards directly, with no poisoning `Result` — by
//! unwrapping std's poison errors. Lock poisoning only occurs after a panic
//! while holding the lock, at which point the process is failing anyway.

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
