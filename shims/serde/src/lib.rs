//! Offline shim for the `serde` crate.
//!
//! This container has no crates.io access, so the workspace vendors a minimal
//! stand-in: the `Serialize` / `Deserialize` traits exist (with blanket
//! implementations, so derive bounds and generic bounds always hold) and the
//! derive macros expand to nothing. No actual serialization is performed —
//! nothing in the workspace serializes yet; the derives only annotate the
//! result types for forward compatibility. Swap this for real serde by
//! pointing `[workspace.dependencies] serde` back at the registry.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
