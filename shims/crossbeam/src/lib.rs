//! Offline shim for the `crossbeam` crate: only the `channel` module, backed
//! by `std::sync::mpsc`. The workspace uses a single-producer unbounded
//! channel to stream per-round experiment records, which mpsc covers exactly.

pub mod channel {
    /// Sending half of an unbounded channel.
    #[derive(Clone, Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or the channel closes.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Blocking iterator over received values, ending when senders drop.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn stream_across_thread() {
        let (tx, rx) = channel::unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }
}
