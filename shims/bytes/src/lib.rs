//! Offline functional shim for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API the workspace uses — [`Bytes`],
//! [`BytesMut`], and the little-endian accessors of the [`Buf`] / [`BufMut`]
//! traits — with real behaviour (the wire-format round-trip tests exercise
//! it). [`Bytes`] is a cheaply cloneable `Arc`-backed slice, as upstream.

use std::ops::RangeBounds;
use std::sync::Arc;

/// Read-side trait: consume numeric values from the front of a buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume `cnt` bytes, returning them as a slice.
    fn take_bytes(&mut self, cnt: usize) -> &[u8];

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

/// Write-side trait: append numeric values to the end of a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// An immutable, cheaply cloneable byte buffer (an `Arc`-backed slice view).
///
/// Backed by an `Arc<Vec<u8>>` rather than an `Arc<[u8]>` so that
/// [`BytesMut::freeze`] (and `Bytes::from(Vec<u8>)`) is a pointer move —
/// converting a `Vec` into an `Arc<[u8]>` would copy every byte into a fresh
/// allocation, which on the encode hot path meant copying every wire buffer
/// once more than necessary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a static slice (copied here; upstream borrows it zero-copy).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, cnt: usize) -> &[u8] {
        assert!(cnt <= self.len(), "buffer underflow");
        let at = self.start;
        self.start += cnt;
        &self.data[at..at + cnt]
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when writing is done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(7);
        buf.put_u32_le(42);
        buf.put_f32_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 16);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_u32_le(), 42);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(&*s.slice(1..), &[3, 4]);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
