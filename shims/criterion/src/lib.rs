//! Offline functional shim for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros — as a simple
//! wall-clock harness: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples whose per-sample iteration count is calibrated to
//! the measurement budget. Median and min/max per-iteration times are
//! printed. No statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one parameterised benchmark: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> Self {
        id.full
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Run `f` `iters` times, recording the total elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness. Mirrors criterion's builder-style configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.into(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for the benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(self.criterion, &full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn time_one_sample<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        _marker: std::marker::PhantomData,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, mut f: F) {
    // Warm-up: also yields a per-iteration estimate for calibration.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < config.warm_up_time {
        time_one_sample(1, &mut f);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

    // Calibrate so that sample_size samples roughly fill measurement_time.
    let budget = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = (0..config.sample_size)
        .map(|_| time_one_sample(iters_per_sample, &mut f).as_secs_f64() / iters_per_sample as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{name:<60} median {} (min {}, max {}) [{} samples x {} iters]",
        format_time(median),
        format_time(lo),
        format_time(hi),
        samples.len(),
        iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.2} s ")
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_payload() {
        let mut count = 0u64;
        fast().bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(2e-9).contains("ns"));
        assert!(format_time(2e-6).contains("us"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2.0).contains("s"));
    }
}
